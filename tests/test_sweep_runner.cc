/**
 * @file
 * Sweep-runner subsystem tests: parallel execution is bit-identical to
 * serial, the persistent result cache short-circuits simulation, and
 * corrupted cache entries are detected and re-run rather than trusted.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "runner/artifacts.hh"
#include "runner/cache_key.hh"
#include "runner/figures.hh"
#include "runner/result_store.hh"
#include "runner/sweep_runner.hh"

using namespace mmt;
namespace fs = std::filesystem;

namespace
{

/** Small but heterogeneous job set: ME + MT apps, two configs. */
SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.name = "test-small";
    spec.cross({"ammp", "libsvm", "lu"},
               {ConfigKind::Base, ConfigKind::MMT_FXR}, {1, 2});
    return spec;
}

std::vector<std::string>
serializeAll(const SweepOutcome &outcome)
{
    std::vector<std::string> out;
    for (const RunResult &r : outcome.results)
        out.push_back(serializeResult(r));
    return out;
}

/** Fresh scratch directory under the test tmpdir. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    return dir.string();
}

} // namespace

TEST(SweepRunner, ParallelMatchesSerialBitExact)
{
    SweepSpec spec = smallSpec();
    SweepOutcome serial = runSweep(spec, {.jobs = 1});
    SweepOutcome parallel = runSweep(spec, {.jobs = 4});

    ASSERT_EQ(serial.results.size(), spec.jobs.size());
    ASSERT_EQ(parallel.results.size(), spec.jobs.size());
    EXPECT_EQ(serial.executed, spec.jobs.size());
    EXPECT_EQ(parallel.executed, spec.jobs.size());

    std::vector<std::string> a = serializeAll(serial);
    std::vector<std::string> b = serializeAll(parallel);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "job " << i << " ("
                              << spec.jobs[i].workload << ")";
    }
}

TEST(SweepRunner, ResultSerializationRoundTrips)
{
    SweepSpec spec;
    spec.name = "roundtrip";
    spec.add("equake", ConfigKind::MMT_FXR, 2);
    SweepOutcome out = runSweep(spec);
    ASSERT_EQ(out.results.size(), 1u);

    std::string text = serializeResult(out.results[0]);
    RunResult parsed;
    ASSERT_TRUE(deserializeResult(text, parsed));
    EXPECT_EQ(serializeResult(parsed), text);

    // Malformed inputs are rejected, not misparsed.
    RunResult dummy;
    EXPECT_FALSE(deserializeResult("", dummy));
    EXPECT_FALSE(deserializeResult(text.substr(0, text.size() / 2), dummy));
    std::string tampered = text;
    tampered.replace(tampered.find("kind "), 9, "kind Bogus");
    EXPECT_FALSE(deserializeResult(tampered, dummy));
}

TEST(SweepRunner, CacheHitsSkipSimulation)
{
    SweepSpec spec = smallSpec();
    std::string dir = scratchDir("sweep-cache-hits");

    SweepOutcome cold = runSweep(spec, {.jobs = 2, .cacheDir = dir});
    EXPECT_EQ(cold.executed, spec.jobs.size());
    EXPECT_EQ(cold.cacheHits, 0u);

    SweepOutcome warm = runSweep(spec, {.jobs = 2, .cacheDir = dir});
    EXPECT_EQ(warm.executed, 0u);
    EXPECT_EQ(warm.cacheHits, spec.jobs.size());
    for (std::size_t i = 0; i < spec.jobs.size(); ++i)
        EXPECT_TRUE(warm.fromCache[i]);
    EXPECT_EQ(serializeAll(cold), serializeAll(warm));

    // --force ignores the valid entries but refreshes them.
    SweepOutcome forced =
        runSweep(spec, {.jobs = 2, .cacheDir = dir, .forceRerun = true});
    EXPECT_EQ(forced.executed, spec.jobs.size());
    EXPECT_EQ(serializeAll(cold), serializeAll(forced));
}

TEST(SweepRunner, CorruptedEntryIsDetectedAndRerun)
{
    SweepSpec spec;
    spec.name = "test-corrupt";
    spec.add("ammp", ConfigKind::Base, 2);
    spec.add("ammp", ConfigKind::MMT_FXR, 2);
    std::string dir = scratchDir("sweep-cache-corrupt");

    SweepOutcome cold = runSweep(spec, {.cacheDir = dir});
    ASSERT_EQ(cold.executed, 2u);

    // Flip the cycle count inside the first job's entry without fixing
    // the checksum.
    ResultStore store(dir);
    std::string path = store.entryPath(spec.jobs[0]);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    in.close();
    std::string entry = ss.str();
    std::size_t pos = entry.find("cycles ");
    ASSERT_NE(pos, std::string::npos);
    entry[pos + 7] = entry[pos + 7] == '9' ? '1' : '9';
    std::ofstream(path, std::ios::trunc) << entry;

    SweepOutcome warm = runSweep(spec, {.cacheDir = dir});
    EXPECT_EQ(warm.corruptEntries, 1u);
    EXPECT_EQ(warm.executed, 1u);
    EXPECT_EQ(warm.cacheHits, 1u);
    EXPECT_EQ(serializeAll(cold), serializeAll(warm));

    // The re-run repaired the entry on disk.
    SweepOutcome healed = runSweep(spec, {.cacheDir = dir});
    EXPECT_EQ(healed.corruptEntries, 0u);
    EXPECT_EQ(healed.executed, 0u);

    // A truncated entry is equally rejected.
    std::ofstream(path, std::ios::trunc) << entry.substr(0, 40);
    SweepOutcome truncated = runSweep(spec, {.cacheDir = dir});
    EXPECT_EQ(truncated.corruptEntries, 1u);
    EXPECT_EQ(truncated.executed, 1u);
    EXPECT_EQ(serializeAll(cold), serializeAll(truncated));
}

TEST(SweepRunner, CacheKeyDependsOnAllInputs)
{
    JobSpec job;
    job.workload = "ammp";
    job.kind = ConfigKind::MMT_FXR;
    job.numThreads = 2;
    std::uint64_t base = cacheKey(job);

    JobSpec other = job;
    other.numThreads = 4;
    EXPECT_NE(cacheKey(other), base);
    other = job;
    other.kind = ConfigKind::Base;
    EXPECT_NE(cacheKey(other), base);
    other = job;
    other.overrides.fhbEntries = 64;
    EXPECT_NE(cacheKey(other), base);
    other = job;
    other.workload = "equake";
    EXPECT_NE(cacheKey(other), base);

    // Each static-hints mode keys differently: a cached hints=off result
    // must never satisfy a hints=on job (or vice versa).
    std::uint64_t hint_keys[] = {
        base,
        (other = job, other.overrides.staticHints = StaticHintsMode::FhbSeed,
         cacheKey(other)),
        (other = job,
         other.overrides.staticHints = StaticHintsMode::SplitSteer,
         cacheKey(other)),
        (other = job, other.overrides.staticHints = StaticHintsMode::Both,
         cacheKey(other)),
    };
    for (int i = 0; i < 4; ++i) {
        for (int k = i + 1; k < 4; ++k)
            EXPECT_NE(hint_keys[i], hint_keys[k]) << i << " vs " << k;
    }

    // Same inputs hash identically.
    EXPECT_EQ(cacheKey(job), base);
}

TEST(SweepRunner, WarmFig5aSweepExecutesZeroSimulations)
{
    Figure fig = makeFigure("5a");
    std::string dir = scratchDir("sweep-cache-fig5a");

    SweepOutcome cold = runSweep(fig.sweep, {.jobs = 4, .cacheDir = dir});
    EXPECT_EQ(cold.executed, fig.sweep.jobs.size());
    EXPECT_EQ(cold.goldenFailures, 0u);

    SweepOutcome warm = runSweep(fig.sweep, {.jobs = 4, .cacheDir = dir});
    EXPECT_EQ(warm.executed, 0u);
    EXPECT_EQ(warm.cacheHits, fig.sweep.jobs.size());
    EXPECT_EQ(serializeAll(cold), serializeAll(warm));

    // The rendered figure is identical either way.
    EXPECT_EQ(fig.render(fig.sweep, cold.results),
              fig.render(fig.sweep, warm.results));
}

TEST(SweepRunner, ArtifactsCoverEveryJob)
{
    SweepSpec spec;
    spec.name = "test-artifacts";
    spec.add("lu", ConfigKind::Base, 2);
    spec.add("lu", ConfigKind::MMT_FXR, 2);
    SweepOutcome out = runSweep(spec);

    std::string csv = sweepToCsv(spec, out);
    // Header + one row per job, each ending in the goldenOk column.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_NE(csv.find("workload,config,threads"), std::string::npos);
    EXPECT_NE(csv.find("lu,Base,2"), std::string::npos);
    EXPECT_NE(csv.find("lu,MMT-FXR,2"), std::string::npos);

    std::string json = sweepToJson(spec, out);
    EXPECT_NE(json.find("\"sweep\": \"test-artifacts\""),
              std::string::npos);
    EXPECT_NE(json.find("\"config\": \"MMT-FXR\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\": " +
                        std::to_string(out.results[0].cycles)),
              std::string::npos);

    // Every row carries the analyzer's prediction next to the measured
    // merged fraction, in both artifact formats.
    EXPECT_NE(csv.find(",predicted_mergeable,"), std::string::npos);
    ASSERT_EQ(out.predictedMergeable.size(), spec.jobs.size());
    std::size_t json_rows = 0;
    for (std::size_t pos = 0;
         (pos = json.find("\"predicted_mergeable\": ", pos)) !=
         std::string::npos;
         ++pos)
        ++json_rows;
    EXPECT_EQ(json_rows, spec.jobs.size());
}

TEST(SweepRunner, PredictionsOrderJobsMostPromisingFirst)
{
    SweepSpec spec = smallSpec();
    SweepOutcome out = runSweep(spec);

    ASSERT_EQ(out.predictedMergeable.size(), spec.jobs.size());
    ASSERT_EQ(out.executionOrder.size(), spec.jobs.size());
    for (double p : out.predictedMergeable) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }

    // executionOrder is a permutation of the job indices, sorted by
    // descending prediction (claim the promising jobs first)...
    std::vector<bool> seen(spec.jobs.size(), false);
    for (std::size_t i : out.executionOrder) {
        ASSERT_LT(i, seen.size());
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
    }
    for (std::size_t k = 1; k < out.executionOrder.size(); ++k) {
        EXPECT_GE(out.predictedMergeable[out.executionOrder[k - 1]],
                  out.predictedMergeable[out.executionOrder[k]])
            << "position " << k;
    }

    // ...while results stay in spec order: the prediction of each job
    // matches the simulator's own static fraction for that slot, which
    // only holds if ordering never permuted the result slots.
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        EXPECT_NEAR(out.predictedMergeable[i],
                    out.results[i].staticMergeableFrac, 1e-12)
            << "job " << i << " (" << spec.jobs[i].workload << ")";
    }
}

TEST(SweepRunner, DeserializeRejectsBadContextLists)
{
    // Regression: the perCore "core 0:1 ..." context list used to be
    // parsed without bounds, so a corrupt entry could deserialize into
    // an impossible topology (duplicate contexts, out-of-range ids) or
    // allocate memory proportional to an attacker-length colon list.
    SweepSpec spec;
    spec.name = "ctx";
    spec.add("ammp", ConfigKind::Base, 2);
    SweepOutcome out = runSweep(spec);
    std::string text = serializeResult(out.results[0]);
    ASSERT_NE(text.find("\ncore 0:1 "), std::string::npos);

    auto withContexts = [&](const std::string &ctxs) {
        std::size_t pos = text.find("\ncore ") + std::strlen("\ncore ");
        std::size_t end = text.find(' ', pos);
        return text.substr(0, pos) + ctxs + text.substr(end);
    };

    RunResult parsed;
    ASSERT_TRUE(deserializeResult(text, parsed)); // untampered baseline
    // One context on one core only.
    EXPECT_FALSE(deserializeResult(withContexts("0:0"), parsed));
    EXPECT_FALSE(deserializeResult(withContexts("0:1:1"), parsed));
    // Context ids are thread ids: < maxThreads.
    EXPECT_FALSE(deserializeResult(withContexts("0:7"), parsed));
    // The list is bounded by maxThreads entries.
    EXPECT_FALSE(deserializeResult(withContexts("0:1:2:3:0"), parsed));
    std::string huge = "0";
    for (int i = 0; i < 10000; ++i)
        huge += ":0";
    EXPECT_FALSE(deserializeResult(withContexts(huge), parsed));
}

TEST(SweepRunner, ProgressReporterOutputIsMonotone)
{
    // Regression: done_ used to be incremented outside the reporter's
    // lock, so two workers could print the same count and skip another;
    // the "[k/total]" sequence must be exactly 1..total in order.
    constexpr std::size_t kWorkers = 8, kPerWorker = 8;
    constexpr std::size_t kTotal = kWorkers * kPerWorker;
    std::vector<std::string> lines; // sink runs under the reporter lock
    ProgressReporter reporter("mono", kTotal, true,
                              [&](const std::string &line) {
                                  lines.push_back(line);
                              });
    JobSpec job;
    job.workload = "ammp";

    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < kWorkers; ++w) {
        pool.emplace_back([&] {
            for (std::size_t n = 0; n < kPerWorker; ++n)
                reporter.jobDone(job, false);
        });
    }
    for (std::thread &t : pool)
        t.join();

    EXPECT_EQ(reporter.done(), kTotal);
    ASSERT_EQ(lines.size(), kTotal);
    for (std::size_t k = 0; k < kTotal; ++k) {
        std::string want = "[mono " + std::to_string(k + 1) + "/" +
                           std::to_string(kTotal) + "]";
        EXPECT_NE(lines[k].find(want), std::string::npos)
            << "line " << k << ": " << lines[k];
    }
}

TEST(SweepRunner, StrictParsersRejectGarbage)
{
    long l = -1;
    EXPECT_TRUE(parseStrictInt("8", l));
    EXPECT_EQ(l, 8);
    EXPECT_TRUE(parseStrictInt("0", l));
    EXPECT_FALSE(parseStrictInt("8x", l)); // atoi would read 8
    EXPECT_FALSE(parseStrictInt("", l));
    EXPECT_FALSE(parseStrictInt("-2", l));
    EXPECT_FALSE(parseStrictInt(" 4", l));
    EXPECT_FALSE(parseStrictInt("9999999999999999999", l));

    bool b = false;
    EXPECT_TRUE(parseStrictBool("yes", b)); // atoi would read 0 = off
    EXPECT_TRUE(b);
    EXPECT_TRUE(parseStrictBool("off", b));
    EXPECT_FALSE(b);
    EXPECT_FALSE(parseStrictBool("maybe", b));
    EXPECT_FALSE(parseStrictBool("", b));

    double d = -1.0;
    EXPECT_TRUE(parseStrictDouble("1.5", d));
    EXPECT_DOUBLE_EQ(d, 1.5);
    EXPECT_FALSE(parseStrictDouble("1.5s", d));
    EXPECT_FALSE(parseStrictDouble("-1", d));
    EXPECT_FALSE(parseStrictDouble("nan", d));
    EXPECT_FALSE(parseStrictDouble("", d));
}

TEST(SweepRunner, EnvOptionsWarnAndKeepDefaultsOnGarbage)
{
    for (const char *name : {"MMT_JOBS", "MMT_SHARDS", "MMT_PROGRESS",
                             "MMT_CACHE_DIR", "MMT_LEASE_STALE_SEC"})
        ::unsetenv(name);
    SweepOptions defaults = sweepOptionsFromEnv();
    EXPECT_GE(defaults.jobs, 1);
    EXPECT_EQ(defaults.shards, 0);
    EXPECT_TRUE(defaults.progress);
    EXPECT_TRUE(defaults.cacheDir.empty());
    EXPECT_DOUBLE_EQ(defaults.leaseStaleSec, 30.0);

    // Garbage values warn and keep the defaults (MMT_JOBS=8x used to
    // atoi to 8; MMT_PROGRESS=yes used to atoi to 0 = silently off).
    ::setenv("MMT_JOBS", "8x", 1);
    ::setenv("MMT_SHARDS", "two", 1);
    ::setenv("MMT_PROGRESS", "maybe", 1);
    ::setenv("MMT_CACHE_DIR", "", 1);
    ::setenv("MMT_LEASE_STALE_SEC", "fast", 1);
    SweepOptions garbage = sweepOptionsFromEnv();
    EXPECT_EQ(garbage.jobs, defaults.jobs);
    EXPECT_EQ(garbage.shards, 0);
    EXPECT_TRUE(garbage.progress);
    EXPECT_TRUE(garbage.cacheDir.empty());
    EXPECT_DOUBLE_EQ(garbage.leaseStaleSec, 30.0);

    ::setenv("MMT_JOBS", "6", 1);
    ::setenv("MMT_SHARDS", "3", 1);
    ::setenv("MMT_PROGRESS", "yes", 1);
    ::setenv("MMT_CACHE_DIR", "/tmp/mmt-env-test", 1);
    ::setenv("MMT_LEASE_STALE_SEC", "1.5", 1);
    SweepOptions valid = sweepOptionsFromEnv();
    EXPECT_EQ(valid.jobs, 6);
    EXPECT_EQ(valid.shards, 3);
    EXPECT_TRUE(valid.progress);
    EXPECT_EQ(valid.cacheDir, "/tmp/mmt-env-test");
    EXPECT_DOUBLE_EQ(valid.leaseStaleSec, 1.5);

    ::setenv("MMT_PROGRESS", "off", 1);
    EXPECT_FALSE(sweepOptionsFromEnv().progress);

    for (const char *name : {"MMT_JOBS", "MMT_SHARDS", "MMT_PROGRESS",
                             "MMT_CACHE_DIR", "MMT_LEASE_STALE_SEC"})
        ::unsetenv(name);
}

TEST(SweepRunner, FilterWorkloadsRestrictsJobs)
{
    Figure fig = makeFigure("7a");
    std::size_t full = fig.sweep.jobs.size();
    fig.sweep.filterWorkloads({"equake", "mcf"});
    EXPECT_LT(fig.sweep.jobs.size(), full);
    EXPECT_EQ(fig.sweep.jobs.size(), 2u * (1 + 5)); // Base + 5 FHB sizes
    for (const JobSpec &job : fig.sweep.jobs)
        EXPECT_TRUE(job.workload == "equake" || job.workload == "mcf");
}
