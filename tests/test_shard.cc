/**
 * @file
 * Sharded-sweep subsystem tests: lease claim/release/reclaim mechanics,
 * concurrent multi-process writers through the ResultStore, crash-
 * mid-write recovery (torn entries quarantined, stale litter swept),
 * and byte-identity of sharded execution against the serial runner.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "runner/result_store.hh"
#include "runner/shard.hh"
#include "runner/sweep_runner.hh"

using namespace mmt;
namespace fs = std::filesystem;

namespace
{

/** Fresh scratch directory under the test tmpdir. */
std::string
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** Two cheap jobs over one workload. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "test-shard";
    spec.add("ammp", ConfigKind::Base, 2);
    spec.add("ammp", ConfigKind::MMT_FXR, 2);
    return spec;
}

std::vector<std::string>
serializeAll(const SweepOutcome &outcome)
{
    std::vector<std::string> out;
    for (const RunResult &r : outcome.results)
        out.push_back(serializeResult(r));
    return out;
}

/** Backdate a file's mtime (heartbeat) by @p seconds. */
void
backdate(const std::string &path, double seconds)
{
    auto t = fs::last_write_time(path);
    fs::last_write_time(
        path, t - std::chrono::duration_cast<fs::file_time_type::duration>(
                      std::chrono::duration<double>(seconds)));
}

/** Files in @p dir whose name contains @p needle. */
std::vector<std::string>
filesContaining(const std::string &dir, const std::string &needle)
{
    std::vector<std::string> hits;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        std::string name = de.path().filename().string();
        if (name.find(needle) != std::string::npos)
            hits.push_back(name);
    }
    return hits;
}

} // namespace

TEST(Shard, LeaseClaimReleaseAndStaleReclaim)
{
    std::string dir = scratchDir("shard-lease");
    std::string lease = dir + "/deadbeef.result.lease";

    LeaseManager a(30.0, 0);
    LeaseManager b(30.0, 1);

    // First claim wins; a second claimant sees a live owner.
    EXPECT_EQ(a.tryClaim(lease, "j"), LeaseManager::Claim::Claimed);
    EXPECT_TRUE(a.ownedByUs(lease));
    EXPECT_EQ(b.tryClaim(lease, "j"), LeaseManager::Claim::Busy);
    EXPECT_FALSE(b.ownedByUs(lease));
    EXPECT_EQ(a.owned().size(), 1u);

    // The lease file carries the owner's identity.
    std::ifstream in(lease);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("mmt-lease v1"), std::string::npos);
    EXPECT_NE(text.find("owner " + processTag()), std::string::npos);
    EXPECT_NE(text.find("shard 0"), std::string::npos);

    // Release frees it for the next claimant.
    a.release(lease);
    EXPECT_FALSE(a.ownedByUs(lease));
    EXPECT_FALSE(fs::exists(lease));
    EXPECT_EQ(b.tryClaim(lease, "j"), LeaseManager::Claim::Claimed);

    // A heartbeat refresh keeps the lease live...
    backdate(lease, 10.0);
    EXPECT_TRUE(LeaseManager(5.0, 2).isStale(lease));
    b.heartbeat();
    EXPECT_FALSE(LeaseManager(5.0, 2).isStale(lease));

    // ...and a dead owner's stale lease is reclaimed by someone else.
    backdate(lease, 10.0);
    LeaseManager c(5.0, 3);
    EXPECT_EQ(c.tryClaim(lease, "j"), LeaseManager::Claim::Claimed);
    EXPECT_TRUE(c.ownedByUs(lease));
    EXPECT_TRUE(filesContaining(dir, ".stale.").empty())
        << "reclaim tombstone leaked";
    c.release(lease);
    b.release(lease);
}

TEST(Shard, StaleReclaimSweepsDeadWritersTmpFiles)
{
    std::string dir = scratchDir("shard-lease-tmp");
    std::string entry = dir + "/cafecafe.result";
    std::string lease = entry + ".lease";

    // A dead worker left a stale lease and a partial publish.
    std::ofstream(lease) << "mmt-lease v1\n";
    std::ofstream(entry + ".tmp.deadhost.12345.0") << "partial";
    backdate(lease, 60.0);
    backdate(entry + ".tmp.deadhost.12345.0", 60.0);

    LeaseManager m(5.0, 0);
    EXPECT_EQ(m.tryClaim(lease, "j"), LeaseManager::Claim::Claimed);
    EXPECT_TRUE(filesContaining(dir, ".tmp.").empty())
        << "dead writer's tmp file survived the reclaim";
    m.release(lease);
}

TEST(Shard, StatusRoundTrips)
{
    ShardStatus s;
    s.sweep = "fig5a";
    s.host = "hostname_example";
    s.pid = 4242;
    s.shard = 3;
    s.total = 80;
    s.done = 17;
    s.executed = 12;
    s.hits = 5;
    s.corrupt = 1;
    s.golden = 0;
    s.finished = false;
    s.updated = 1754500000;

    ShardStatus p;
    ASSERT_TRUE(parseShardStatus(renderShardStatus(s), p));
    EXPECT_EQ(p.sweep, s.sweep);
    EXPECT_EQ(p.host, s.host);
    EXPECT_EQ(p.pid, s.pid);
    EXPECT_EQ(p.shard, s.shard);
    EXPECT_EQ(p.total, s.total);
    EXPECT_EQ(p.done, s.done);
    EXPECT_EQ(p.executed, s.executed);
    EXPECT_EQ(p.hits, s.hits);
    EXPECT_EQ(p.corrupt, s.corrupt);
    EXPECT_EQ(p.golden, s.golden);
    EXPECT_EQ(p.finished, s.finished);
    EXPECT_EQ(p.updated, s.updated);

    s.finished = true;
    ASSERT_TRUE(parseShardStatus(renderShardStatus(s), p));
    EXPECT_TRUE(p.finished);

    ShardStatus bad;
    EXPECT_FALSE(parseShardStatus("", bad));
    EXPECT_FALSE(parseShardStatus("{\"sweep\": \"x\"}", bad));
}

TEST(Shard, ForkedConcurrentWritersNeverTearReads)
{
    // Regression for the tmp-name collision: the temp suffix used to be
    // the std::thread id alone, which is identical in forked children
    // (both are the main thread), so two processes interleaved bytes in
    // one temp file and readers saw checksum failures. With host+pid+
    // counter suffixes every writer owns a private temp file and every
    // published entry is whole.
    std::string dir = scratchDir("shard-writers");
    JobSpec job;
    job.workload = "ammp";
    job.kind = ConfigKind::Base;
    job.numThreads = 2;

    RunResult seed;
    seed.workload = resolveWorkload(job.workload).name;
    seed.kind = job.kind;
    seed.numThreads = job.numThreads;
    seed.cycles = 1000;
    ResultStore store(dir);
    ASSERT_TRUE(store.store(job, seed));

    constexpr int kWriters = 2;
    constexpr int kStoresPerWriter = 150;
    pid_t pids[kWriters];
    for (int w = 0; w < kWriters; ++w) {
        pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: hammer the entry with its own payload variant.
            ResultStore cstore(dir);
            RunResult mine = seed;
            mine.cycles = 1000 + static_cast<std::uint64_t>(w);
            bool ok = true;
            for (int n = 0; n < kStoresPerWriter; ++n)
                ok = cstore.store(job, mine) && ok;
            ::_exit(ok ? 0 : 1);
        }
        pids[w] = pid;
    }

    // Parent: every read must observe one whole payload variant.
    int torn = 0, reads = 0, done = 0;
    bool reaped[kWriters] = {};
    while (done < kWriters) {
        RunResult got;
        ResultStore::Status st = store.load(job, got);
        ++reads;
        if (st == ResultStore::Status::Corrupt) {
            ++torn;
        } else if (st == ResultStore::Status::Hit) {
            EXPECT_GE(got.cycles, 1000u);
            EXPECT_LT(got.cycles, 1000u + kWriters);
        }
        for (int w = 0; w < kWriters; ++w) {
            if (reaped[w])
                continue;
            int wstatus = 0;
            if (waitpid(pids[w], &wstatus, WNOHANG) == pids[w]) {
                EXPECT_TRUE(WIFEXITED(wstatus) &&
                            WEXITSTATUS(wstatus) == 0);
                reaped[w] = true;
                ++done;
            }
        }
    }
    EXPECT_EQ(torn, 0) << "of " << reads << " concurrent reads";
    RunResult final_read;
    EXPECT_EQ(store.load(job, final_read), ResultStore::Status::Hit);
}

TEST(Shard, CrashMidWriteRecovery)
{
    SweepSpec spec = tinySpec();
    std::string dir = scratchDir("shard-crash");
    SweepOutcome cold = runSweep(spec, {.jobs = 1, .cacheDir = dir});
    ASSERT_EQ(cold.executed, 2u);

    ResultStore store(dir);
    // Simulate a worker that died mid-publish of job 0 (torn entry +
    // stale temp file) and another that died holding job 1's lease
    // right after publishing.
    std::string entry0 = store.entryPath(spec.jobs[0]);
    {
        std::ifstream in(entry0);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        in.close();
        std::ofstream(entry0, std::ios::trunc)
            << text.substr(0, text.size() / 2);
    }
    std::string tmp0 = entry0 + ".tmp.deadhost.999.7";
    std::ofstream(tmp0) << "partial bytes";
    backdate(tmp0, 60.0);
    std::string lease1 = leasePath(store, spec.jobs[1]);
    std::ofstream(lease1) << "mmt-lease v1\n";
    backdate(lease1, 60.0);

    SweepOptions opt;
    opt.jobs = 1;
    opt.cacheDir = dir;
    opt.shardId = 0;
    opt.shardCount = 1;
    opt.leaseStaleSec = 0.5;
    SweepOutcome recovered = runShardWorker(spec, opt);

    // The torn entry was quarantined and re-simulated; the published
    // job was served from the store.
    EXPECT_EQ(recovered.missingJobs, 0u);
    EXPECT_EQ(recovered.corruptEntries, 1u);
    EXPECT_EQ(recovered.executed, 1u);
    EXPECT_EQ(recovered.cacheHits, 1u);
    EXPECT_EQ(serializeAll(cold), serializeAll(recovered));
    EXPECT_FALSE(filesContaining(dir + "/quarantine", ".result.").empty())
        << "torn bytes were not preserved for forensics";

    // All crash litter is gone: no temp files, no leases.
    EXPECT_TRUE(filesContaining(dir, ".tmp.").empty());
    EXPECT_TRUE(filesContaining(dir, ".lease").empty());

    // A second pass runs nothing: the cache healed.
    SweepOutcome warm = runSweep(spec, {.jobs = 1, .cacheDir = dir});
    EXPECT_EQ(warm.executed, 0u);
    EXPECT_EQ(warm.corruptEntries, 0u);
    EXPECT_EQ(serializeAll(cold), serializeAll(warm));
}

TEST(Shard, ManualWorkerSkipsLiveForeignLease)
{
    SweepSpec spec = tinySpec();
    std::string dir = scratchDir("shard-foreign");
    ResultStore store(dir);

    // Job 1 is held by a live foreign worker (fresh heartbeat).
    fs::create_directories(dir);
    std::string lease1 = leasePath(store, spec.jobs[1]);
    std::ofstream(lease1) << "mmt-lease v1\n";

    SweepOptions opt;
    opt.jobs = 1;
    opt.cacheDir = dir;
    opt.shardId = 0;
    opt.shardCount = 2;
    SweepOutcome partial = runShardWorker(spec, opt);
    EXPECT_EQ(partial.executed, 1u);
    EXPECT_EQ(partial.missingJobs, 1u);

    // The foreign owner "finishes": lease released. A re-run completes
    // from the warm cache plus one simulation.
    fs::remove(lease1);
    SweepOutcome complete = runShardWorker(spec, opt);
    EXPECT_EQ(complete.missingJobs, 0u);
    EXPECT_EQ(complete.executed, 1u);
    EXPECT_EQ(complete.cacheHits, 1u);
}

TEST(Shard, ShardedSweepMatchesSerialBitExact)
{
    SweepSpec spec = tinySpec();
    spec.add("lu", ConfigKind::Base, 2);
    spec.add("lu", ConfigKind::MMT_FXR, 2);

    SweepOutcome serial = runSweep(spec, {.jobs = 1});

    SweepOptions opt;
    opt.jobs = 2;
    opt.cacheDir = scratchDir("shard-vs-serial");
    opt.shards = 2;
    SweepOutcome sharded = runShardedSweep(spec, opt);

    ASSERT_EQ(sharded.results.size(), spec.jobs.size());
    EXPECT_EQ(sharded.executed, spec.jobs.size());
    EXPECT_EQ(sharded.cacheHits, 0u);
    EXPECT_EQ(sharded.missingJobs, 0u);
    for (std::size_t i = 0; i < spec.jobs.size(); ++i)
        EXPECT_FALSE(sharded.fromCache[i]);
    EXPECT_EQ(serializeAll(serial), serializeAll(sharded));

    // No coordination litter once the fleet is done.
    EXPECT_TRUE(filesContaining(opt.cacheDir, ".lease").empty());
    EXPECT_TRUE(filesContaining(opt.cacheDir, ".tmp.").empty());
    EXPECT_TRUE(
        filesContaining(shardStatusDir(opt.cacheDir), ".json").empty())
        << "worker status heartbeats survived completion";

    // Warm sharded re-run simulates nothing and reads identical bytes.
    SweepOutcome warm = runShardedSweep(spec, opt);
    EXPECT_EQ(warm.executed, 0u);
    EXPECT_EQ(warm.cacheHits, spec.jobs.size());
    for (std::size_t i = 0; i < spec.jobs.size(); ++i)
        EXPECT_TRUE(warm.fromCache[i]);
    EXPECT_EQ(serializeAll(serial), serializeAll(warm));
}

TEST(Shard, JanitorRemovesOnlyThisSweepsStaleLitter)
{
    SweepSpec spec = tinySpec();
    std::string dir = scratchDir("shard-janitor");
    runSweep(spec, {.jobs = 1, .cacheDir = dir});
    ResultStore store(dir);

    std::string stale_lease = leasePath(store, spec.jobs[0]);
    std::ofstream(stale_lease) << "mmt-lease v1\n";
    backdate(stale_lease, 60.0);
    std::string stale_tmp =
        store.entryPath(spec.jobs[0]) + ".tmp.deadhost.1.0";
    std::ofstream(stale_tmp) << "partial";
    backdate(stale_tmp, 60.0);
    std::string stale_tomb =
        leasePath(store, spec.jobs[1]) + ".stale.deadhost.1.1";
    std::ofstream(stale_tomb) << "mmt-lease v1\n";
    backdate(stale_tomb, 60.0);
    // Live lease (fresh heartbeat) and a foreign sweep's file must
    // both survive.
    std::string live_lease = leasePath(store, spec.jobs[1]);
    std::ofstream(live_lease) << "mmt-lease v1\n";
    std::string foreign = dir + "/0123456789abcdef.result.lease";
    std::ofstream(foreign) << "mmt-lease v1\n";
    backdate(foreign, 60.0);

    EXPECT_EQ(janitorSweep(store, spec, 5.0), 3u);
    EXPECT_FALSE(fs::exists(stale_lease));
    EXPECT_FALSE(fs::exists(stale_tmp));
    EXPECT_FALSE(fs::exists(stale_tomb));
    EXPECT_TRUE(fs::exists(live_lease));
    EXPECT_TRUE(fs::exists(foreign));

    // Entries themselves are never janitor food.
    EXPECT_EQ(filesContaining(dir, ".result").size(), 4u);
}
