/**
 * @file
 * Fetch-stage timing tests: cold I-cache stalls, trace-cache taken-
 * branch crossing, fetch-width budgeting, mispredict stalls and
 * resumption, and the single-stream front end's group interleaving.
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "iasm/assembler.hh"

using namespace mmt;

namespace
{

struct Rig
{
    Program prog;
    MemoryImage img;
    std::unique_ptr<SmtCore> core;

    Rig(const std::string &src, CoreParams p)
    {
        prog = assemble(src);
        img.loadData(prog);
        if (prog.symbols.count("nthreads"))
            img.write64(prog.symbol("nthreads"),
                        static_cast<std::uint64_t>(p.numThreads));
        std::vector<MemoryImage *> ptrs(
            static_cast<std::size_t>(p.numThreads), &img);
        core = std::make_unique<SmtCore>(p, &prog, ptrs);
    }
};

std::string
straightLine(int n)
{
    std::string s = "main:\n";
    for (int i = 0; i < n; ++i)
        s += "    addi r1, r1, 1\n";
    s += "    out r1\n    halt\n";
    return s;
}

} // namespace

TEST(FetchStage, ColdICacheMissStallsFetch)
{
    CoreParams p;
    p.numThreads = 1;
    Rig rig(straightLine(4), p);
    // Nothing can be fetched before the cold instruction fill arrives
    // (L1 + L2 + DRAM latency ~207 cycles).
    for (int i = 0; i < 50; ++i)
        rig.core->tick();
    EXPECT_EQ(rig.core->stats.fetchedThreadInsts.value(), 0u);
    rig.core->run();
    Cycles cold = p.mem.l1Latency + p.mem.l2Latency + p.mem.dramLatency;
    EXPECT_GT(rig.core->now(), cold);
    EXPECT_LT(rig.core->now(), cold + 50);
}

TEST(FetchStage, FetchWidthBoundsRecordsPerCycle)
{
    CoreParams p;
    p.numThreads = 1;
    p.fetchWidth = 4;
    Rig rig(straightLine(64), p);
    rig.core->run();
    Cycles narrow = rig.core->now();

    CoreParams p8 = p;
    p8.fetchWidth = 8;
    Rig rig8(straightLine(64), p8);
    rig8.core->run();
    // Wider fetch must not be slower on straight-line code.
    EXPECT_LE(rig8.core->now(), narrow);
}

TEST(FetchStage, TraceCacheLetsFetchCrossTakenBranches)
{
    // A chain of unconditional jumps: with the trace cache warm, fetch
    // crosses several taken branches per cycle; without it, one taken
    // branch ends the fetch group.
    std::string src = "main:\n";
    for (int i = 0; i < 32; ++i) {
        src += "    addi r1, r1, 1\n    j l" + std::to_string(i) + "\n";
        src += "l" + std::to_string(i) + ":\n";
    }
    src += "    out r1\n    halt\n";

    CoreParams with;
    with.numThreads = 1;
    Rig a(src, with);
    a.core->run();

    CoreParams without = with;
    without.traceCache.enabled = false;
    Rig b(src, without);
    b.core->run();
    EXPECT_LT(a.core->now(), b.core->now());
}

TEST(FetchStage, MispredictStallsUntilResolution)
{
    // A data-dependent branch alternates taken/not-taken: lots of
    // mispredicts, each stalling fetch until the branch executes.
    const char *src = R"(
main:
    li  r1, 0
    li  r2, 64
loop:
    andi r3, r1, 1
    beqz r3, even
    addi r4, r4, 1
even:
    addi r1, r1, 1
    blt  r1, r2, loop
    out  r4
    halt
)";
    CoreParams p;
    p.numThreads = 1;
    Rig rig(src, p);
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 32u);
    // The alternation trains quickly under a history-based predictor,
    // so mispredicts exist but are bounded.
    EXPECT_GT(rig.core->stats.branchMispredicts.value(), 0u);
    EXPECT_LT(rig.core->stats.branchMispredicts.value(), 24u);
}

TEST(FetchStage, SingleStreamAlternatesBetweenThreads)
{
    // Two independent (Base) threads on a single-stream front end: both
    // make progress and the fetch totals are balanced.
    const char *src = R"(
.data
nthreads: .word 1
.text
main:
    li  r1, 0
    li  r2, 500
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    out  r1
    barrier
    halt
)";
    CoreParams p;
    p.numThreads = 2;
    Rig rig(src, p);
    rig.core->run();
    auto f0 = rig.core->thread(0).fetchedInsts;
    auto f1 = rig.core->thread(1).fetchedInsts;
    EXPECT_EQ(f0, f1); // identical programs, ICOUNT keeps them even
    EXPECT_EQ(rig.core->thread(0).output[0], 500u);
    EXPECT_EQ(rig.core->thread(1).output[0], 500u);
}

TEST(FetchStage, MergedFetchHalvesStreamCycles)
{
    const char *src = R"(
.data
nthreads: .word 1
.text
main:
    li  r1, 0
    li  r2, 400
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    out  r1
    barrier
    halt
)";
    CoreParams base;
    base.numThreads = 2;
    Rig b(src, base);
    b.core->run();

    CoreParams mmt = base;
    mmt.sharedFetch = true;
    Rig m(src, mmt);
    m.core->run();

    // Same fetched thread-instructions, roughly half the records.
    EXPECT_EQ(b.core->stats.fetchedThreadInsts.value(),
              m.core->stats.fetchedThreadInsts.value());
    EXPECT_LT(m.core->stats.fetchRecords.value(),
              static_cast<std::uint64_t>(
                  0.6 * static_cast<double>(
                            b.core->stats.fetchRecords.value())));
}

TEST(FetchStage, MergeHintReleasedByPartnerArrivalNotTimeout)
{
    // Both threads funnel into `join`, where a MERGEHINT parks whichever
    // arrives first. The wait must end when the groups merge (growth past
    // the recorded member count), long before the timeout.
    const char *src = R"(
.data
nthreads: .word 1
.text
main:
    bnez tid, slow
    j    join
slow:
    addi r5, r5, 1
    addi r5, r5, 1
    addi r5, r5, 1
    addi r5, r5, 1
    addi r5, r5, 1
    addi r5, r5, 1
    addi r5, r5, 1
    addi r5, r5, 1
    j    join
join:
    mergehint
    addi r1, r1, 1
    out  r1
    barrier
    halt
)";
    CoreParams p;
    p.numThreads = 2;
    p.sharedFetch = true;
    p.mergeHintWait = 50000;
    Rig rig(src, p);
    rig.core->run();
    EXPECT_GE(rig.core->stats.hintWaits.value(), 1u);
    EXPECT_GE(rig.core->stats.hintMerges.value(), 1u);
    EXPECT_LT(rig.core->now(), 5000u);
    EXPECT_EQ(rig.core->thread(0).output[0], 1u);
    EXPECT_EQ(rig.core->thread(1).output[0], 1u);
}

TEST(FetchStage, LvipRollbackClearsMergeHintWait)
{
    // Regression: an LVIP rollback squashes the group's path, and any
    // member parked at a MERGEHINT must restart with the rollback
    // penalty instead of serving out the full hint timeout. ME threads
    // diverge on a per-context selector (tid is 0 for every ME thread);
    // the upper pair then loads a word that differs between its two
    // private memories, so the merged ME load mispredicts "identical"
    // and rolls back right as the pair parks at the MERGEHINT.
    const char *src = R"(
.data
nthreads: .word 1
sel:      .word 0
val:      .word 0
.text
main:
    la   r9, sel
    ld   r8, 0(r9)
    bnez r8, upper
    addi r1, r1, 1
    j    join
upper:
    la   r9, val
    ld   r4, 0(r9)
    mergehint
    addi r1, r1, 2
join:
    out  r1
    barrier
    halt
)";
    CoreParams p;
    p.numThreads = 4;
    p.sharedFetch = true;
    p.sharedExec = true;
    p.multiExecution = true;
    p.mergeHintWait = 20000;

    Program prog = assemble(src);
    std::vector<MemoryImage> imgs(4);
    std::vector<MemoryImage *> ptrs;
    for (int t = 0; t < 4; ++t) {
        imgs[(std::size_t)t].loadData(prog);
        imgs[(std::size_t)t].write64(prog.symbol("nthreads"), 4);
        imgs[(std::size_t)t].write64(prog.symbol("sel"), t >= 2 ? 1 : 0);
        imgs[(std::size_t)t].write64(prog.symbol("val"),
                                     t == 3 ? 9u : 5u);
        ptrs.push_back(&imgs[(std::size_t)t]);
    }
    SmtCore core(p, &prog, ptrs);
    core.run();

    EXPECT_GT(core.stats.lvipRollbacks.value(), 0u);
    EXPECT_GE(core.stats.hintWaits.value(), 1u);
    // Without the rollback clearing the wait, threads 2/3 sit at the
    // hint until the 20000-cycle timeout and the barrier holds 0/1 too.
    EXPECT_LT(core.now(), 10000u);
    EXPECT_EQ(core.thread(0).output[0], 1u);
    EXPECT_EQ(core.thread(1).output[0], 1u);
    EXPECT_EQ(core.thread(2).output[0], 2u);
    EXPECT_EQ(core.thread(3).output[0], 2u);
}

TEST(FetchStage, HaltedThreadStopsFetching)
{
    const char *src = R"(
.data
nthreads: .word 1
.text
main:
    bnez tid, longer
    halt
longer:
    li  r1, 0
    li  r2, 100
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    out  r1
    halt
)";
    CoreParams p;
    p.numThreads = 2;
    Rig rig(src, p);
    rig.core->run();
    EXPECT_LT(rig.core->thread(0).fetchedInsts, 10u);
    EXPECT_GT(rig.core->thread(1).fetchedInsts, 150u);
    EXPECT_EQ(rig.core->thread(1).output[0], 100u);
}
