/**
 * @file
 * Calibration regression tests: each workload's sharing profile (the
 * Figure 1 measurement) must stay in the class the paper assigns it —
 * otherwise a kernel edit silently breaks the reproduction's shape.
 * Bounds are deliberately loose; they encode *class membership*, not
 * exact percentages.
 */

#include <gtest/gtest.h>

#include <memory>

#include "iasm/assembler.hh"
#include "profile/align.hh"
#include "workloads/workload.hh"

using namespace mmt;

namespace
{

struct Expectation
{
    const char *app;
    double minExec;  // lower bound on execute-identical fraction
    double maxExec;  // upper bound
    double minTotal; // lower bound on fetch-identical-or-better
};

SharingProfile
profileOf(const std::string &name, DivergenceStats *div = nullptr)
{
    const Workload &w = findWorkload(name);
    Program prog = assemble(w.source);
    std::vector<std::unique_ptr<MemoryImage>> images;
    std::vector<MemoryImage *> ptrs;
    int spaces = w.multiExecution ? 2 : 1;
    for (int i = 0; i < spaces; ++i) {
        images.push_back(std::make_unique<MemoryImage>());
        images.back()->loadData(prog);
        w.initData(*images.back(), prog, i, 2, false);
    }
    for (int t = 0; t < 2; ++t)
        ptrs.push_back(images[spaces == 1 ? 0 : t].get());
    FunctionalCpu cpu(&prog, ptrs, w.multiExecution);
    std::vector<TraceRecord> traces[2];
    cpu.setTrace(
        [&](ThreadId t, const TraceRecord &r) { traces[t].push_back(r); });
    cpu.run();
    return alignTraces(traces[0], traces[1], div);
}

} // namespace

class WorkloadProfileTest : public ::testing::TestWithParam<Expectation>
{
};

TEST_P(WorkloadProfileTest, SharingClassMatchesPaper)
{
    const Expectation &e = GetParam();
    SharingProfile p = profileOf(e.app);
    EXPECT_GE(p.fracExec(), e.minExec) << e.app;
    EXPECT_LE(p.fracExec(), e.maxExec) << e.app;
    EXPECT_GE(p.fracExec() + p.fracFetch(), e.minTotal) << e.app;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, WorkloadProfileTest,
    ::testing::Values(
        // High execute-identical (paper: ammp, equake "have lots").
        Expectation{"ammp", 0.85, 1.01, 0.95},
        Expectation{"equake", 0.50, 0.95, 0.90},
        Expectation{"mcf", 0.80, 1.01, 0.95},
        Expectation{"libsvm", 0.80, 1.01, 0.95},
        Expectation{"swaptions", 0.85, 1.01, 0.95},
        // Limited execute-identical (paper: "vpr, lu, fft, ocean ...
        // with limited execute-identical").
        Expectation{"lu", 0.10, 0.60, 0.85},
        Expectation{"fft", 0.00, 0.30, 0.85},
        Expectation{"ocean", 0.00, 0.40, 0.85},
        Expectation{"water-sp", 0.00, 0.40, 0.85},
        Expectation{"fluidanimate", 0.00, 0.45, 0.90},
        Expectation{"blackscholes", 0.00, 0.35, 0.85},
        Expectation{"canneal", 0.00, 0.50, 0.90},
        // Middle of the road.
        Expectation{"twolf", 0.40, 0.98, 0.90},
        Expectation{"vpr", 0.40, 0.98, 0.85},
        Expectation{"vortex", 0.40, 1.01, 0.90},
        Expectation{"water-ns", 0.10, 0.80, 0.90}),
    [](const ::testing::TestParamInfo<Expectation> &info) {
        std::string n = info.param.app;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST(WorkloadProfiles, EquakeHasLongDivergences)
{
    // Figure 2's signature: equake's divergent paths differ by more
    // than 16 taken branches.
    DivergenceStats div;
    profileOf("equake", &div);
    ASSERT_GT(div.lengthDiffs.size(), 5u);
    EXPECT_LT(div.fractionWithin(16), 0.5);
    EXPECT_GT(div.fractionWithin(32), 0.9);
}

TEST(WorkloadProfiles, ShortDivergenceApps)
{
    // "For all programs except equake and vortex, more than 85% of all
    // diverged paths have a difference in length of no more than 16."
    for (const char *app : {"twolf", "vpr", "water-ns", "canneal"}) {
        DivergenceStats div;
        profileOf(app, &div);
        if (div.lengthDiffs.size() < 5)
            continue; // too few samples to be meaningful
        EXPECT_GT(div.fractionWithin(16), 0.85) << app;
    }
}
