/**
 * @file
 * FunctionalCpu (golden model) tests: arithmetic programs, control flow,
 * memory, OUT logging, multi-threaded barriers and tid conventions, and
 * trace capture.
 */

#include <gtest/gtest.h>

#include "iasm/assembler.hh"
#include "profile/tracer.hh"

using namespace mmt;

namespace
{

/** Run a single-threaded program and return the CPU. */
FunctionalCpu
run1(const std::string &src, MemoryImage &img)
{
    static Program prog; // kept alive for the cpu's lifetime
    prog = assemble(src);
    img.loadData(prog);
    FunctionalCpu cpu(&prog, {&img}, /*multi_execution=*/true);
    cpu.run();
    return cpu;
}

} // namespace

TEST(FunctionalCpu, ArithmeticAndOut)
{
    MemoryImage img;
    FunctionalCpu cpu = run1(R"(
main:
    li  r1, 6
    li  r2, 7
    mul r3, r1, r2
    out r3
    halt
)", img);
    ASSERT_EQ(cpu.thread(0).output.size(), 1u);
    EXPECT_EQ(cpu.thread(0).output[0], 42u);
    EXPECT_TRUE(cpu.thread(0).halted);
    EXPECT_EQ(cpu.thread(0).executed, 5u);
}

TEST(FunctionalCpu, LoopAndBranches)
{
    MemoryImage img;
    FunctionalCpu cpu = run1(R"(
main:
    li r1, 0
    li r2, 10
loop:
    add r1, r1, r2
    addi r2, r2, -1
    bnez r2, loop
    out r1
    halt
)", img);
    EXPECT_EQ(cpu.thread(0).output[0], 55u);
}

TEST(FunctionalCpu, MemoryRoundTrip)
{
    MemoryImage img;
    FunctionalCpu cpu = run1(R"(
.data
buf: .space 16
val: .word 123
.text
main:
    la  r1, val
    ld  r2, 0(r1)
    la  r3, buf
    st  r2, 8(r3)
    ld  r4, 8(r3)
    out r4
    halt
)", img);
    EXPECT_EQ(cpu.thread(0).output[0], 123u);
}

TEST(FunctionalCpu, FunctionCallConvention)
{
    MemoryImage img;
    FunctionalCpu cpu = run1(R"(
main:
    li   r4, 5
    call square
    out  r5
    halt
square:
    mul  r5, r4, r4
    ret
)", img);
    EXPECT_EQ(cpu.thread(0).output[0], 25u);
}

TEST(FunctionalCpu, FloatingPointProgram)
{
    MemoryImage img;
    FunctionalCpu cpu = run1(R"(
main:
    fli  f1, 2.0
    fli  f2, 0.25
    fdiv f3, f1, f2
    fcvti r1, f3
    out  r1
    halt
)", img);
    EXPECT_EQ(cpu.thread(0).output[0], 8u);
}

TEST(FunctionalCpu, MtThreadsPartitionByTid)
{
    Program prog = assemble(R"(
.data
nthreads: .word 1
acc:      .space 32
.text
main:
    la   r1, nthreads
    ld   r1, 0(r1)
    slli r2, tid, 3
    la   r3, acc
    add  r3, r3, r2
    addi r4, tid, 100
    st   r4, 0(r3)
    barrier
    bnez tid, done
    la   r3, acc
    ld   r5, 0(r3)
    ld   r6, 8(r3)
    add  r5, r5, r6
    out  r5
done:
    halt
)");
    MemoryImage img;
    img.loadData(prog);
    img.write64(prog.symbol("nthreads"), 2);
    FunctionalCpu cpu(&prog, {&img, &img}, /*multi_execution=*/false);
    cpu.run();
    ASSERT_EQ(cpu.thread(0).output.size(), 1u);
    EXPECT_EQ(cpu.thread(0).output[0], 201u); // 100 + 101
    EXPECT_TRUE(cpu.thread(1).output.empty());
}

TEST(FunctionalCpu, MtStackPointersDiffer)
{
    Program prog = assemble("main:\n  out sp\n  out tid\n  halt\n");
    MemoryImage img;
    FunctionalCpu cpu(&prog, {&img, &img}, false);
    cpu.run();
    EXPECT_NE(cpu.thread(0).output[0], cpu.thread(1).output[0]);
    EXPECT_EQ(cpu.thread(0).output[1], 0u);
    EXPECT_EQ(cpu.thread(1).output[1], 1u);
}

TEST(FunctionalCpu, ForceTidZeroMakesThreadsIdentical)
{
    Program prog = assemble("main:\n  out tid\n  halt\n");
    MemoryImage img;
    FunctionalCpu cpu(&prog, {&img, &img}, false, /*force_tid_zero=*/true);
    cpu.run();
    EXPECT_EQ(cpu.thread(0).output[0], 0u);
    EXPECT_EQ(cpu.thread(1).output[0], 0u);
}

TEST(FunctionalCpu, MeInstancesSeeOwnMemory)
{
    Program prog = assemble(R"(
.data
x: .word 0
.text
main:
    la r1, x
    ld r2, 0(r1)
    out r2
    halt
)");
    MemoryImage a, b;
    a.loadData(prog);
    b.loadData(prog);
    a.write64(prog.symbol("x"), 7);
    b.write64(prog.symbol("x"), 9);
    FunctionalCpu cpu(&prog, {&a, &b}, true);
    cpu.run();
    EXPECT_EQ(cpu.thread(0).output[0], 7u);
    EXPECT_EQ(cpu.thread(1).output[0], 9u);
}

TEST(FunctionalCpu, TraceCallbackRecords)
{
    Program prog = assemble(R"(
main:
    li  r1, 3
    bnez r1, skip
    nop
skip:
    halt
)");
    MemoryImage img;
    FunctionalCpu cpu(&prog, {&img}, true);
    std::vector<TraceRecord> trace;
    cpu.setTrace([&](ThreadId, const TraceRecord &r) {
        trace.push_back(r);
    });
    cpu.run();
    ASSERT_EQ(trace.size(), 3u); // li, bnez (taken), halt
    EXPECT_EQ(trace[0].op, Opcode::LUI);
    EXPECT_TRUE(trace[0].writesDest);
    EXPECT_EQ(trace[0].destVal, 3u);
    EXPECT_TRUE(trace[1].isTakenBranch);
    EXPECT_EQ(trace[2].op, Opcode::HALT);
}

TEST(FunctionalCpu, BarrierReleasesWhenOtherThreadsHalt)
{
    // A barrier only waits for *live* threads: if the rest have halted,
    // the waiting thread proceeds (matching the pipeline's semantics).
    Program prog = assemble(R"(
main:
    bnez tid, t1
    halt
t1:
    barrier
    li  r1, 5
    out r1
    halt
)");
    MemoryImage img;
    FunctionalCpu cpu(&prog, {&img, &img}, false);
    cpu.run();
    EXPECT_TRUE(cpu.thread(1).halted);
    ASSERT_EQ(cpu.thread(1).output.size(), 1u);
    EXPECT_EQ(cpu.thread(1).output[0], 5u);
}
