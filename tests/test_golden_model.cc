/**
 * @file
 * The repository's central correctness property (DESIGN.md §7): for
 * every workload and MMT configuration, the timing simulator's final
 * architected state, memory and OUT logs must equal the independent
 * functional interpreter's. A wrong RST bit, bad split, missed LVIP
 * rollback or bogus register merge corrupts architected state and fails
 * this test.
 *
 * runWorkload() performs the comparison internally and reports it in
 * RunResult::goldenOk.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace mmt;

namespace
{
struct Case
{
    const char *app;
    ConfigKind kind;
    int threads;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string s = info.param.app;
    s += "_";
    s += configName(info.param.kind);
    s += "_";
    s += std::to_string(info.param.threads) + "t";
    for (char &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}
} // namespace

class GoldenModelTest : public ::testing::TestWithParam<Case>
{
};

TEST_P(GoldenModelTest, TimingMatchesFunctionalModel)
{
    const Case &c = GetParam();
    RunResult r = runWorkload(findWorkload(c.app), c.kind, c.threads);
    EXPECT_TRUE(r.goldenOk);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.committedThreadInsts, 10'000u);
}

// Every workload under the full MMT-FXR configuration with 2 threads —
// the configuration exercising every mechanism at once.
INSTANTIATE_TEST_SUITE_P(
    AllAppsFxr2t, GoldenModelTest,
    ::testing::Values(
        Case{"ammp", ConfigKind::MMT_FXR, 2},
        Case{"twolf", ConfigKind::MMT_FXR, 2},
        Case{"vpr", ConfigKind::MMT_FXR, 2},
        Case{"equake", ConfigKind::MMT_FXR, 2},
        Case{"mcf", ConfigKind::MMT_FXR, 2},
        Case{"vortex", ConfigKind::MMT_FXR, 2},
        Case{"libsvm", ConfigKind::MMT_FXR, 2},
        Case{"lu", ConfigKind::MMT_FXR, 2},
        Case{"fft", ConfigKind::MMT_FXR, 2},
        Case{"water-sp", ConfigKind::MMT_FXR, 2},
        Case{"ocean", ConfigKind::MMT_FXR, 2},
        Case{"water-ns", ConfigKind::MMT_FXR, 2},
        Case{"swaptions", ConfigKind::MMT_FXR, 2},
        Case{"fluidanimate", ConfigKind::MMT_FXR, 2},
        Case{"blackscholes", ConfigKind::MMT_FXR, 2},
        Case{"canneal", ConfigKind::MMT_FXR, 2}),
    caseName);

// Spot checks across the other configurations and 4 threads: one ME and
// one MT app per configuration.
INSTANTIATE_TEST_SUITE_P(
    ConfigSpotChecks, GoldenModelTest,
    ::testing::Values(
        Case{"ammp", ConfigKind::Base, 2},
        Case{"water-ns", ConfigKind::Base, 4},
        Case{"equake", ConfigKind::MMT_F, 2},
        Case{"lu", ConfigKind::MMT_F, 4},
        Case{"libsvm", ConfigKind::MMT_FX, 2},
        Case{"fft", ConfigKind::MMT_FX, 4},
        Case{"mcf", ConfigKind::MMT_FXR, 4},
        Case{"swaptions", ConfigKind::MMT_FXR, 4},
        Case{"ammp", ConfigKind::Limit, 2},
        Case{"vortex", ConfigKind::Limit, 4},
        Case{"canneal", ConfigKind::MMT_FXR, 3}),
    caseName);
