/**
 * @file
 * Timing-neutrality gate for core refactors: the full counter dump of
 * every Figure 5(a) workload under Base and MMT-FXR must stay
 * bit-identical to the goldens recorded in tests/goldens/.
 *
 * The goldens were recorded on the pre-arena/event-wheel core (after the
 * CoreParams and load/store-port satellite fixes of the same change, so
 * they pin the *mechanical* refactor, not those modelling fixes — see
 * docs/INTERNALS.md). Any cycle-count or counter drift — a reordered
 * completion, a lost stall, an extra port conflict — shows up as a
 * byte-level diff here.
 *
 * Regenerate intentionally with:
 *   MMT_UPDATE_GOLDENS=1 ./mmt_tests --gtest_filter='GoldenEquivalence.*'
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace mmt;

namespace
{

std::string
goldenDir()
{
#ifdef MMT_SOURCE_DIR
    return std::string(MMT_SOURCE_DIR) + "/tests/goldens";
#else
    return "tests/goldens";
#endif
}

bool
updateMode()
{
    const char *v = std::getenv("MMT_UPDATE_GOLDENS");
    return v && std::string(v) == "1";
}

std::string
goldenPath(const std::string &workload, ConfigKind kind)
{
    return goldenDir() + "/" + workload + "_" + configName(kind) +
           "_2t.stats";
}

void
checkOne(const Workload &w, ConfigKind kind)
{
    std::string dump = runStatsDump(w, kind, 2);
    std::string path = goldenPath(w.name, kind);

    if (updateMode()) {
        std::ofstream out(path, std::ios::trunc);
        out << dump;
        ASSERT_TRUE(out) << "cannot write golden " << path;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (record with MMT_UPDATE_GOLDENS=1)";
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), dump)
        << w.name << " " << configName(kind)
        << " 2T: stats dump drifted from the recorded golden ("
        << path << "); a timing-neutral refactor must not change any "
        << "counter. If the change is an intended timing-model fix, "
        << "regenerate with MMT_UPDATE_GOLDENS=1.";
}

} // namespace

TEST(GoldenEquivalence, BaseStatsMatchRecordedGoldens)
{
    for (const Workload &w : allWorkloads())
        checkOne(w, ConfigKind::Base);
    checkOne(messagePassingWorkload(), ConfigKind::Base);
}

TEST(GoldenEquivalence, MmtFxrStatsMatchRecordedGoldens)
{
    for (const Workload &w : allWorkloads())
        checkOne(w, ConfigKind::MMT_FXR);
    checkOne(messagePassingWorkload(), ConfigKind::MMT_FXR);
}
