/**
 * @file
 * Load Values Identical Predictor tests (paper §4.2.5): default-identical
 * prediction, mispredict table insertion, aliasing behaviour.
 */

#include <gtest/gtest.h>

#include "core/mmt/lvip.hh"
#include "isa/isa.hh"

using namespace mmt;

TEST(Lvip, PredictsIdenticalByDefault)
{
    LoadValuesIdenticalPredictor lvip(4096);
    EXPECT_TRUE(lvip.predictIdentical(0x1000));
    EXPECT_TRUE(lvip.predictIdentical(0x2000));
}

TEST(Lvip, RemembersMispredictingPcs)
{
    LoadValuesIdenticalPredictor lvip(4096);
    lvip.recordMispredict(0x1000);
    EXPECT_FALSE(lvip.predictIdentical(0x1000));
    EXPECT_TRUE(lvip.predictIdentical(0x1004));
    EXPECT_EQ(lvip.mispredicts.value(), 1u);
}

TEST(Lvip, EntriesAreSticky)
{
    // The paper's table of mispredicted PCs has no aging: once a PC is
    // marked, the load is always split.
    LoadValuesIdenticalPredictor lvip(4096);
    lvip.recordMispredict(0x1000);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(lvip.predictIdentical(0x1000));
}

TEST(Lvip, IndexAliasingEvicts)
{
    // Two PCs mapping to the same entry: the later mispredict replaces
    // the earlier tag, so the earlier PC predicts identical again.
    LoadValuesIdenticalPredictor lvip(16);
    Addr a = 0x1000;
    Addr b = a + 16 * instBytes; // same index, different tag
    lvip.recordMispredict(a);
    EXPECT_FALSE(lvip.predictIdentical(a));
    lvip.recordMispredict(b);
    EXPECT_FALSE(lvip.predictIdentical(b));
    EXPECT_TRUE(lvip.predictIdentical(a)); // evicted
}

TEST(Lvip, AccessCounting)
{
    LoadValuesIdenticalPredictor lvip(64);
    lvip.predictIdentical(0x1000);
    lvip.predictIdentical(0x1000);
    EXPECT_EQ(lvip.accesses.value(), 2u);
}
