/**
 * @file
 * Compiled C workload tests (the mmtc frontend's acceptance gate):
 *
 *  - golden equivalence: interpreting the C source over the exact
 *    words the workload initializer placed in memory must produce the
 *    same out() log as a 1-thread functional run of the compiled
 *    binary;
 *  - SPMD correctness: N-thread runs of the auto-SPMDized MT kernels
 *    must reproduce the 1-thread output on every thread;
 *  - ME instances must differ (and stop differing under the Limit
 *    configuration's identical inputs);
 *  - simulator integration: every compiled workload passes the golden
 *    model under Base and MMT-FXR through runWorkload;
 *  - lint gate: zero error-severity mmt-analyze diagnostics, the
 *    static-mergeable >= dynamic-merged invariant, and recorded
 *    mergeable-proven precision baselines.
 */

#include <gtest/gtest.h>

#include "analysis/dynamic_bound.hh"
#include "cc/compiler.hh"
#include "cc/interp.hh"
#include "cc/parser.hh"
#include "iasm/assembler.hh"
#include "profile/tracer.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace mmt;

namespace
{

const CompiledSource &
sourceFor(const std::string &base)
{
    for (const CompiledSource &s : compiledSources())
        if (s.name == base)
            return s;
    ADD_FAILURE() << "no compiled source '" << base << "'";
    static CompiledSource empty;
    return empty;
}

/**
 * Read every C-level global out of @p img as raw words, so the
 * interpreter sees exactly the inputs the workload initializer
 * produced (declared initializers included, since the image was loaded
 * from the program's data segment first).
 */
cc::GlobalWords
globalWordsFromImage(const cc::Module &m, const MemoryImage &img,
                     const Program &prog)
{
    cc::GlobalWords words;
    for (const cc::GlobalVar &g : m.globals) {
        int n = g.arraySize == 0 ? 1 : g.arraySize;
        std::vector<std::uint64_t> v;
        for (int i = 0; i < n; ++i)
            v.push_back(img.read64(prog.symbol(g.name) +
                                   static_cast<Addr>(i) * 8));
        words[g.name] = std::move(v);
    }
    return words;
}

/** Functional run of workload @p w at @p nthreads; returns per-thread
 *  output logs. MT workloads share one image, ME gets one each. */
std::vector<std::vector<std::uint64_t>>
functionalRun(const Workload &w, int nthreads)
{
    Program prog = assemble(w.source, defaultCodeBase, defaultDataBase,
                            w.name);
    std::vector<std::unique_ptr<MemoryImage>> images;
    std::vector<MemoryImage *> ptrs;
    int spaces = w.multiExecution ? nthreads : 1;
    for (int i = 0; i < spaces; ++i) {
        images.push_back(std::make_unique<MemoryImage>());
        images.back()->loadData(prog);
        w.initData(*images.back(), prog, i, nthreads, false);
    }
    for (int t = 0; t < nthreads; ++t)
        ptrs.push_back(images[spaces == 1
                                  ? 0
                                  : static_cast<std::size_t>(t)].get());
    FunctionalCpu cpu(&prog, ptrs, w.multiExecution);
    cpu.run(50'000'000);
    std::vector<std::vector<std::uint64_t>> out;
    for (int t = 0; t < nthreads; ++t) {
        EXPECT_TRUE(cpu.thread(t).halted) << w.name;
        out.push_back(cpu.thread(t).output);
    }
    return out;
}

/**
 * Measured mergeable-proven fractions, re-pinned for analyzer schema
 * v3 (affine-with-base domain, call-string contexts, spill-slot
 * forwarding). The stress-corpus kernels (chain..mixed) are the
 * entries whose precision depends on the context-sensitive machinery:
 * their pins sit strictly above the flat-analysis values (e.g. c-pair
 * 41 -> 59 proven). The analyzer must never fall below these.
 */
struct ProvenBaseline
{
    const char *name;
    double frac;
};

constexpr ProvenBaseline kCompiledProvenBaselines[] = {
    {"c-saxpy", 46.0 / 92.0},      {"c-saxpy-me", 58.0 / 92.0},
    {"c-dot", 34.0 / 64.0},        {"c-dot-me", 42.0 / 64.0},
    {"c-stencil1d", 51.0 / 107.0}, {"c-stencil1d-me", 63.0 / 107.0},
    {"c-hist", 65.0 / 110.0},      {"c-hist-me", 77.0 / 110.0},
    {"c-matvec", 61.0 / 109.0},    {"c-matvec-me", 73.0 / 109.0},
    {"c-psum", 72.0 / 145.0},      {"c-psum-me", 88.0 / 145.0},
    {"c-chain", 64.0 / 102.0},     {"c-chain-me", 83.0 / 102.0},
    {"c-spill", 84.0 / 173.0},     {"c-spill-me", 136.0 / 173.0},
    {"c-poly", 69.0 / 111.0},      {"c-poly-me", 91.0 / 111.0},
    {"c-bank", 54.0 / 87.0},       {"c-bank-me", 70.0 / 87.0},
    {"c-window", 64.0 / 98.0},     {"c-window-me", 79.0 / 98.0},
    {"c-pair", 59.0 / 104.0},      {"c-pair-me", 85.0 / 104.0},
    {"c-mixed", 62.0 / 97.0},      {"c-mixed-me", 77.0 / 97.0},
};

double
provenBaseline(const std::string &name)
{
    for (const ProvenBaseline &b : kCompiledProvenBaselines)
        if (name == b.name)
            return b.frac;
    ADD_FAILURE() << "no proven-precision baseline recorded for '"
                  << name << "' — measure and add one";
    return 1.0;
}

} // namespace

TEST(CsrcRegistry, TwoWorkloadsPerSource)
{
    EXPECT_EQ(compiledSources().size(), 13u);
    EXPECT_EQ(compiledWorkloads().size(), 26u);
    for (const CompiledSource &s : compiledSources()) {
        const Workload &mt = findWorkload("c-" + s.name);
        const Workload &me = findWorkload("c-" + s.name + "-me");
        EXPECT_FALSE(mt.multiExecution);
        EXPECT_TRUE(me.multiExecution);
        EXPECT_EQ(mt.source, s.iasm);
        EXPECT_EQ(me.source, s.iasm);
        EXPECT_EQ(mt.suite, "CSRC");
    }
}

TEST(CsrcRegistry, EverySourceSlicesAtLeastOneLoop)
{
    // The MT variants are only meaningful if the SPMD pass actually
    // partitioned work in every shipped kernel.
    for (const CompiledSource &s : compiledSources()) {
        cc::CompileResult res = cc::compile(s.csource, s.name);
        EXPECT_GE(res.spmd.sliced.size(), 1u)
            << s.name << " has no sliced loop";
        EXPECT_TRUE(res.spmd.warnings.empty())
            << s.name << ": " << res.spmd.warnings.front();
        EXPECT_EQ(res.iasm, s.iasm);
    }
}

class CsrcWorkloadTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const CompiledSource &src() const { return sourceFor(GetParam()); }
    const Workload &mt() const
    {
        return findWorkload("c-" + GetParam());
    }
    const Workload &me() const
    {
        return findWorkload("c-" + GetParam() + "-me");
    }
};

TEST_P(CsrcWorkloadTest, GoldenEquivalenceAgainstInterpreter)
{
    // Interpret the C over the exact initialized memory words; the
    // compiled binary at 1 thread must produce the identical OUT log.
    const Workload &w = mt();
    Program prog = assemble(w.source, defaultCodeBase, defaultDataBase,
                            w.name);
    MemoryImage img;
    img.loadData(prog);
    w.initData(img, prog, 0, 1, false);

    cc::Module mod = cc::parse(src().csource, src().name);
    cc::GlobalWords words = globalWordsFromImage(mod, img, prog);
    std::vector<std::int64_t> expected = cc::interpret(mod, words);
    ASSERT_FALSE(expected.empty());
    std::vector<std::uint64_t> expected_words;
    for (std::int64_t v : expected)
        expected_words.push_back(static_cast<std::uint64_t>(v));

    FunctionalCpu cpu(&prog, {&img}, false);
    cpu.run(50'000'000);
    EXPECT_TRUE(cpu.thread(0).halted);
    EXPECT_EQ(cpu.thread(0).output, expected_words) << w.name;
}

TEST_P(CsrcWorkloadTest, SpmdNThreadMatchesOneThread)
{
    auto one = functionalRun(mt(), 1);
    ASSERT_FALSE(one[0].empty());
    for (int n : {2, 4}) {
        auto many = functionalRun(mt(), n);
        for (int t = 0; t < n; ++t)
            EXPECT_EQ(many[static_cast<std::size_t>(t)], one[0])
                << mt().name << " thread " << t << " of " << n;
    }
}

TEST_P(CsrcWorkloadTest, MeInstancesDifferUnlessIdentical)
{
    const Workload &w = me();
    Program prog = assemble(w.source, defaultCodeBase, defaultDataBase,
                            w.name);
    auto run_instance = [&](int instance, bool identical) {
        MemoryImage img;
        img.loadData(prog);
        w.initData(img, prog, instance, 2, identical);
        FunctionalCpu cpu(&prog, {&img}, true);
        cpu.run(50'000'000);
        return cpu.thread(0).output;
    };
    EXPECT_NE(run_instance(0, false), run_instance(1, false)) << w.name;
    EXPECT_EQ(run_instance(0, true), run_instance(1, true)) << w.name;
}

TEST_P(CsrcWorkloadTest, SimulatorGoldenOkBaseAndMmtFxr)
{
    for (const Workload *w : {&mt(), &me()}) {
        for (ConfigKind kind : {ConfigKind::Base, ConfigKind::MMT_FXR}) {
            RunResult r = runWorkload(*w, kind, 2, SimOverrides(),
                                      /*check_golden=*/true);
            EXPECT_TRUE(r.goldenOk)
                << w->name << " under " << configName(kind);
            EXPECT_GT(r.committedThreadInsts, 0u);
        }
    }
}

TEST_P(CsrcWorkloadTest, LintGateAndMergeBound)
{
    for (const Workload *w : {&mt(), &me()}) {
        analysis::AnalysisResult res = analysis::analyzeWorkload(*w);
        EXPECT_EQ(res.errors(), 0)
            << analysis::renderReport(res, w->name, false);
        EXPECT_GE(res.mergeableProvenFrac(), provenBaseline(w->name))
            << analysis::renderReport(res, w->name, false);

        analysis::MergeBoundReport rep =
            analysis::runMergeBoundCheck(*w, ConfigKind::MMT_FXR, 2);
        ASSERT_GT(rep.committed, 0u);
        for (const analysis::BoundViolation &v : rep.violations) {
            ADD_FAILURE() << w->name << ": pc 0x" << std::hex << v.pc
                          << std::dec << " (line " << v.line
                          << ") merged " << v.merged
                          << " thread-insts but is statically divergent";
        }
        EXPECT_GE(rep.staticMergeableFrac(), rep.dynamicMergedFrac())
            << w->name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCsrc, CsrcWorkloadTest,
    ::testing::Values("saxpy", "dot", "stencil1d", "hist", "matvec",
                      "psum", "chain", "spill", "poly", "bank", "window",
                      "pair", "mixed"),
    [](const ::testing::TestParamInfo<std::string> &i) { return i.param; });
