/**
 * @file
 * Tests for the barrier-aware static race detection (analysis/race.hh)
 * and the dynamic happens-before oracle (analysis/race_oracle.hh):
 * EpochSet algebra, barrier-epoch segmentation over the interprocedural
 * CFG (conditional barriers, barriers inside called functions at
 * distinct call-string contexts, barrier-in-loop widening), the
 * disjointness/tid-guard/reduction benign proofs, lint integration with
 * suppressions, vector-clock replay of hand-built traces, and the
 * static-covers-dynamic race gate over the deliberately racy compiled
 * kernels.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/race.hh"
#include "analysis/race_oracle.hh"
#include "iasm/assembler.hh"
#include "workloads/workload.hh"

using namespace mmt;
using namespace mmt::analysis;

namespace
{

/** Keeps the Program alive next to the analyses that reference it. */
struct Raced
{
    Program prog;
    Cfg cfg;
    SharingResult sharing;
    RaceResult race;

    explicit Raced(const std::string &src, bool multi_execution = false)
        : prog(assemble(src)), cfg(prog)
    {
        SharingOptions opt;
        opt.multiExecution = multi_execution;
        sharing = analyzeSharing(cfg, opt);
        race = analyzeRaces(cfg, sharing, opt);
    }

    /** Index of the @p n-th store (0-based) in the program. */
    int
    storeAt(int n) const
    {
        for (std::size_t i = 0; i < prog.code.size(); ++i) {
            if (prog.code[i].isStore() && n-- == 0)
                return static_cast<int>(i);
        }
        ADD_FAILURE() << "store #" << n << " not found";
        return -1;
    }

    int
    loadAt(int n) const
    {
        for (std::size_t i = 0; i < prog.code.size(); ++i) {
            if (prog.code[i].isLoad() && n-- == 0)
                return static_cast<int>(i);
        }
        ADD_FAILURE() << "load #" << n << " not found";
        return -1;
    }
};

bool
hasPairRule(const RaceResult &r, const std::string &rule)
{
    for (const RacePair &p : r.pairs)
        if (p.rule == rule)
            return true;
    return false;
}

bool
hasDiagRule(const AnalysisResult &res, const std::string &rule)
{
    for (const Diagnostic &d : res.diags)
        if (d.rule == rule)
            return true;
    return false;
}

RaceEvent
ev(RaceEvent::Kind k, Addr pc, Addr addr = 0, RegVal val = 0,
   RegVal old = 0, int partner = -1)
{
    RaceEvent e;
    e.kind = k;
    e.pc = pc;
    e.addr = addr;
    e.val = val;
    e.old = old;
    e.partner = partner;
    return e;
}

} // namespace

// ---------------------------------------------------------- EpochSet --

TEST(EpochSet, ContainsAndShift)
{
    EpochSet s;
    EXPECT_TRUE(s.empty());
    s.bits = 1; // epoch 0
    EXPECT_TRUE(s.contains(0));
    EXPECT_FALSE(s.contains(1));
    EpochSet t = s.shifted();
    EXPECT_FALSE(t.contains(0));
    EXPECT_TRUE(t.contains(1));
    EXPECT_FALSE(t.empty());
}

TEST(EpochSet, JoinIsMonotoneUnion)
{
    EpochSet a, b;
    a.bits = 0b01;
    b.bits = 0b10;
    EXPECT_TRUE(a.join(b));
    EXPECT_TRUE(a.contains(0));
    EXPECT_TRUE(a.contains(1));
    EXPECT_FALSE(a.join(b)); // already absorbed: no growth
    EpochSet open;
    open.openFrom = 3;
    EXPECT_TRUE(a.join(open));
    EXPECT_EQ(a.openFrom, 3);
    EXPECT_TRUE(a.contains(100));
}

TEST(EpochSet, ShiftPastBitsetWidensToOpenTail)
{
    EpochSet s;
    s.bits = 1ull << 63;
    EpochSet t = s.shifted();
    EXPECT_GE(t.openFrom, 0);
    EXPECT_TRUE(t.contains(64));
    // An open tail keeps advancing but saturates instead of escaping.
    EpochSet u = t.shifted();
    EXPECT_GE(u.openFrom, t.openFrom);
    EXPECT_LE(u.openFrom, 63);
}

TEST(EpochSet, Intersects)
{
    EpochSet a, b;
    a.bits = 0b01;
    b.bits = 0b10;
    EXPECT_FALSE(a.intersects(b));
    b.bits = 0b11;
    EXPECT_TRUE(a.intersects(b));

    EpochSet open;
    open.openFrom = 2;
    EXPECT_FALSE(a.intersects(open)); // {0} vs {2,3,...}
    EpochSet high;
    high.bits = 1ull << 5;
    EXPECT_TRUE(high.intersects(open));
    EXPECT_TRUE(open.intersects(high));
    EpochSet open2;
    open2.openFrom = 40;
    EXPECT_TRUE(open.intersects(open2)); // two open tails always meet
}

// ------------------------------------------------- epoch segmentation --

TEST(RaceEpochs, BarriersSegmentStraightLineCode)
{
    Raced r(R"(
.data
g: .word 0
.text
main:
    la   r1, g
    li   r2, 1
    st   r2, 0(r1)
    barrier
    li   r3, 2
    st   r3, 0(r1)
    halt
)");
    ASSERT_TRUE(r.race.checked);
    int s0 = r.storeAt(0);
    int s1 = r.storeAt(1);
    EpochSet e0 = r.race.epochsOf(r.cfg, s0);
    EpochSet e1 = r.race.epochsOf(r.cfg, s1);
    EXPECT_TRUE(e0.contains(0));
    EXPECT_FALSE(e0.contains(1));
    EXPECT_TRUE(e1.contains(1));
    EXPECT_FALSE(e1.contains(0));
    // The two stores are in disjoint epochs: ordered, never racing
    // (each still races with itself across threads — same address).
    EXPECT_FALSE(r.race.reportsPair(s0, s1));
    EXPECT_TRUE(r.race.reportsPair(s0, s0));
}

TEST(RaceEpochs, ConditionalBarrierYieldsBothEpochs)
{
    // One path passes a barrier, the other does not: the join sees
    // epoch {0, 1}, so accesses there may race with either phase.
    Raced r(R"(
.data
g: .word 0
.text
main:
    la   r1, g
    li   r2, 1
    beqz tid, skip
    barrier
skip:
    st   r2, 0(r1)
    halt
)");
    ASSERT_TRUE(r.race.checked);
    EpochSet e = r.race.epochsOf(r.cfg, r.storeAt(0));
    EXPECT_TRUE(e.contains(0));
    EXPECT_TRUE(e.contains(1));
    EXPECT_FALSE(e.contains(2));
}

TEST(RaceEpochs, BarrierInCalleeDiffersPerCallString)
{
    // The barrier sits inside f; the two call sites reach it at
    // different epoch counts, so the depth-2 call strings must keep
    // the post-return epochs separate instead of joining them.
    Raced r(R"(
.data
g: .word 0
.text
main:
    la   r5, g
    li   r6, 1
    call f
    st   r6, 0(r5)
    call f
    st   r6, 0(r5)
    halt
f:
    barrier
    ret
)");
    ASSERT_TRUE(r.race.checked);
    int s0 = r.storeAt(0);
    int s1 = r.storeAt(1);
    EpochSet e0 = r.race.epochsOf(r.cfg, s0);
    EpochSet e1 = r.race.epochsOf(r.cfg, s1);
    EXPECT_TRUE(e0.contains(1));
    EXPECT_FALSE(e0.contains(2));
    EXPECT_TRUE(e1.contains(2));
    EXPECT_FALSE(e1.contains(1));
    // Context-separated epochs order the two stores.
    EXPECT_FALSE(r.race.reportsPair(s0, s1));
}

TEST(RaceEpochs, BarrierInLoopWidensToOpenTail)
{
    Raced r(R"(
main:
    li   r1, 4
loop:
    barrier
    addi r1, r1, -1
    bnez r1, loop
    halt
)");
    ASSERT_TRUE(r.race.checked);
    // The addi after the barrier can sit at any epoch >= 1.
    int addi = -1;
    for (std::size_t i = 0; i < r.prog.code.size(); ++i) {
        if (r.prog.line(static_cast<int>(i)) == 5)
            addi = static_cast<int>(i);
    }
    ASSERT_GE(addi, 0);
    EpochSet e = r.race.epochsOf(r.cfg, addi);
    EXPECT_GE(e.openFrom, 0);
    EXPECT_TRUE(e.contains(63));
}

// ------------------------------------------------ conflict detection --

TEST(RaceDetect, SharedStoreRacesWithItself)
{
    Raced r(R"(
.data
g: .word 0
.text
main:
    la   r1, g
    st   tid, 0(r1)
    halt
)");
    ASSERT_TRUE(r.race.checked);
    ASSERT_EQ(r.race.pairs.size(), 1u);
    EXPECT_EQ(r.race.pairs[0].rule, kRuleRaceStoreStore);
    EXPECT_EQ(r.race.pairs[0].instA, r.race.pairs[0].instB);
    EXPECT_EQ(r.race.pairs[0].anchor, r.storeAt(0));
    EXPECT_FALSE(r.race.pairs[0].suppressed);
}

TEST(RaceDetect, GuardedStoreVsUnguardedLoad)
{
    // Thread 0 stores while the others load the same word in the same
    // epoch: a store/load race anchored at the store.
    Raced r(R"(
.data
g: .word 0
.text
main:
    la   r1, g
    li   r2, 7
    beqz tid, writer
    ld   r3, 0(r1)
    j    done
writer:
    st   r2, 0(r1)
done:
    halt
)");
    ASSERT_TRUE(r.race.checked);
    EXPECT_TRUE(hasPairRule(r.race, kRuleRaceStoreLoad));
    EXPECT_TRUE(r.race.reportsPair(r.storeAt(0), r.loadAt(0)));
}

TEST(RaceDetect, TidGuardedSectionIsBenign)
{
    // Only thread 0 reaches the read-modify-write: a single common
    // thread cannot race with itself.
    Raced r(R"(
.data
g: .word 0
.text
main:
    la   r1, g
    bnez tid, done
    ld   r2, 0(r1)
    addi r2, r2, 1
    st   r2, 0(r1)
done:
    halt
)");
    ASSERT_TRUE(r.race.checked);
    EXPECT_TRUE(r.race.pairs.empty());
}

TEST(RaceDetect, TidStridedAccessesProvedDisjoint)
{
    // a + 8*tid: the affine-with-base domain proves every cross-thread
    // address pair at least 8 bytes apart.
    Raced r(R"(
.data
arr: .space 64
.text
main:
    la   r1, arr
    slli r2, tid, 3
    add  r1, r1, r2
    st   r2, 0(r1)
    ld   r3, 0(r1)
    halt
)");
    ASSERT_TRUE(r.race.checked);
    EXPECT_TRUE(r.race.pairs.empty());
}

TEST(RaceDetect, BarrierSeparatesProducerFromConsumer)
{
    const char *with_barrier = R"(
.data
g: .word 0
.text
main:
    la   r1, g
    li   r2, 5
    bnez tid, wait
    st   r2, 0(r1)
wait:
    barrier
    ld   r3, 0(r1)
    halt
)";
    Raced r(with_barrier);
    ASSERT_TRUE(r.race.checked);
    EXPECT_TRUE(r.race.pairs.empty());

    // Same program without the barrier: the epochs intersect again.
    std::string no_barrier = with_barrier;
    std::size_t pos = no_barrier.find("barrier");
    no_barrier.replace(pos, 7, "nop    ");
    Raced q(no_barrier);
    ASSERT_TRUE(q.race.checked);
    EXPECT_TRUE(hasPairRule(q.race, kRuleRaceStoreLoad));
}

TEST(RaceDetect, MisusedReductionScratchGetsOwnRule)
{
    // Scratch stores are tid-strided (disjoint), but the combine read
    // runs before any barrier: thread 0's slot is read while thread 0
    // may still be writing it.
    Raced r(R"(
.data
__mmtc_red0: .space 32
.text
main:
    la   r1, __mmtc_red0
    slli r2, tid, 3
    add  r2, r1, r2
    st   r3, 0(r2)
    ld   r4, 0(r1)
    halt
)");
    ASSERT_TRUE(r.race.checked);
    EXPECT_TRUE(hasPairRule(r.race, kRuleUnguardedReduction));
}

TEST(RaceDetect, MultiExecutionIsUnchecked)
{
    Raced r(R"(
.data
g: .word 0
.text
main:
    la   r1, g
    st   tid, 0(r1)
    halt
)",
            /*multi_execution=*/true);
    EXPECT_FALSE(r.race.checked);
    EXPECT_TRUE(r.race.pairs.empty());
    EXPECT_FALSE(r.race.reportsPair(0, 0));
}

// ------------------------------------------------- lint integration --

TEST(RaceLint, ReportedAsErrorAtAnchor)
{
    Program p = assemble(R"(
.data
g: .word 0
.text
main:
    la   r1, g
    st   tid, 0(r1)
    halt
)");
    AnalysisResult res = analyzeProgram(p);
    EXPECT_TRUE(hasDiagRule(res, kRuleRaceStoreStore));
    EXPECT_GE(res.errors(), 1);
}

TEST(RaceLint, AllowSuppressesButKeepsRawPair)
{
    Program p = assemble(R"(
.data
g: .word 0
.text
main:
    la   r1, g
    st   tid, 0(r1)   ; analyze:allow(race-store-store) intended sink
    halt
)");
    AnalysisResult res = analyzeProgram(p);
    EXPECT_EQ(res.errors(), 0)
        << renderReport(res, "allow-suppresses", false);
    EXPECT_FALSE(hasDiagRule(res, kRuleRaceStoreStore));
    // The raw pair survives for the dynamic gate.
    ASSERT_EQ(res.race.pairs.size(), 1u);
    EXPECT_TRUE(res.race.pairs[0].suppressed);
    EXPECT_TRUE(res.race.reportsPair(res.race.pairs[0].instA,
                                     res.race.pairs[0].instB));
}

TEST(RaceLint, UnusedRaceSuppressionFlagged)
{
    const char *src = R"(
.data
arr: .space 64
.text
main:
    la   r1, arr
    slli r2, tid, 3
    add  r1, r1, r2
    st   r2, 0(r1)   ; analyze:allow(race-store-store) stale
    halt
)";
    Program p = assemble(src);
    AnalysisResult res = analyzeProgram(p);
    EXPECT_TRUE(hasDiagRule(res, "unused-suppression"))
        << renderReport(res, "unused-allow", false);

    // ME analysis skips race rules entirely (checked == false), so the
    // same comment must NOT count as unused there.
    AnalysisOptions opt;
    opt.multiExecution = true;
    AnalysisResult me = analyzeProgram(p, opt);
    EXPECT_FALSE(hasDiagRule(me, "unused-suppression"))
        << renderReport(me, "unused-allow-me", false);
}

// ------------------------------------------------------ oracle replay --

TEST(RaceOracle, UnorderedStoreLoadDetected)
{
    RaceTrace t(2);
    t[0] = {ev(RaceEvent::Kind::Store, 0x100, 0x5000, 1, 0)};
    t[1] = {ev(RaceEvent::Kind::Load, 0x200, 0x5000, 0)};
    std::vector<DynamicRace> races = replayRaceTrace(t);
    ASSERT_EQ(races.size(), 1u);
    EXPECT_EQ(races[0].pcA, 0x100u);
    EXPECT_EQ(races[0].pcB, 0x200u);
    EXPECT_EQ(races[0].addr, 0x5000u);
    EXPECT_FALSE(races[0].storeStore);
}

TEST(RaceOracle, UnorderedStoreStoreDetected)
{
    RaceTrace t(2);
    t[0] = {ev(RaceEvent::Kind::Store, 0x100, 0x5000, 1, 0)};
    t[1] = {ev(RaceEvent::Kind::Store, 0x200, 0x5000, 2, 1)};
    std::vector<DynamicRace> races = replayRaceTrace(t);
    ASSERT_EQ(races.size(), 1u);
    EXPECT_TRUE(races[0].storeStore);
}

TEST(RaceOracle, BarrierOrdersAcrossContexts)
{
    RaceTrace t(2);
    t[0] = {ev(RaceEvent::Kind::Store, 0x100, 0x5000, 1, 0),
            ev(RaceEvent::Kind::Barrier, 0x104)};
    t[1] = {ev(RaceEvent::Kind::Barrier, 0x104),
            ev(RaceEvent::Kind::Load, 0x200, 0x5000, 1)};
    EXPECT_TRUE(replayRaceTrace(t).empty());

    // Same streams with the load moved before the barrier: racy.
    RaceTrace u(2);
    u[0] = t[0];
    u[1] = {ev(RaceEvent::Kind::Load, 0x200, 0x5000, 0),
            ev(RaceEvent::Kind::Barrier, 0x104)};
    EXPECT_EQ(replayRaceTrace(u).size(), 1u);
}

TEST(RaceOracle, SendRecvEdgeOrders)
{
    // ctx0 stores then sends; ctx1 receives then loads: the channel
    // edge orders the pair (values differ, so without the edge this
    // would be flagged).
    RaceTrace t(2);
    t[0] = {ev(RaceEvent::Kind::Store, 0x100, 0x5000, 5, 0),
            ev(RaceEvent::Kind::Send, 0x104, 0, 5, 0, 1)};
    t[1] = {ev(RaceEvent::Kind::Recv, 0x200, 0, 5, 0, 0),
            ev(RaceEvent::Kind::Load, 0x204, 0x5000, 7)};
    EXPECT_TRUE(replayRaceTrace(t).empty());

    RaceTrace u(2);
    u[0] = {t[0][0]};
    u[1] = {t[1][1]};
    EXPECT_EQ(replayRaceTrace(u).size(), 1u);
}

TEST(RaceOracle, SilentAndEqualValueStoresBenign)
{
    // Silent store (val == old): dropped entirely.
    RaceTrace t(2);
    t[0] = {ev(RaceEvent::Kind::Store, 0x100, 0x5000, 3, 3)};
    t[1] = {ev(RaceEvent::Kind::Load, 0x200, 0x5000, 0)};
    EXPECT_TRUE(replayRaceTrace(t).empty());

    // Equal-value conflict: both sides move the same value.
    RaceTrace u(2);
    u[0] = {ev(RaceEvent::Kind::Store, 0x100, 0x5000, 5, 0)};
    u[1] = {ev(RaceEvent::Kind::Load, 0x200, 0x5000, 5)};
    EXPECT_TRUE(replayRaceTrace(u).empty());

    // Redundant threads re-storing the same value: store/store benign.
    RaceTrace v(2);
    v[0] = {ev(RaceEvent::Kind::Store, 0x100, 0x5000, 5, 0)};
    v[1] = {ev(RaceEvent::Kind::Store, 0x200, 0x5000, 5, 0)};
    EXPECT_TRUE(replayRaceTrace(v).empty());
}

TEST(RaceOracle, BlockedReceiveTerminates)
{
    // A receive with no matching send must stop the replay cleanly
    // (malformed / truncated trace), not spin or crash.
    RaceTrace t(2);
    t[1] = {ev(RaceEvent::Kind::Recv, 0x200, 0, 0, 0, 0),
            ev(RaceEvent::Kind::Load, 0x204, 0x5000, 1)};
    EXPECT_TRUE(replayRaceTrace(t).empty());
}

TEST(RaceOracle, RepeatedRaceDeduplicatedWithCount)
{
    RaceTrace t(2);
    t[0] = {ev(RaceEvent::Kind::Store, 0x100, 0x5000, 1, 0),
            ev(RaceEvent::Kind::Store, 0x100, 0x5008, 2, 0)};
    t[1] = {ev(RaceEvent::Kind::Load, 0x200, 0x5000, 0),
            ev(RaceEvent::Kind::Load, 0x200, 0x5008, 0)};
    std::vector<DynamicRace> races = replayRaceTrace(t);
    ASSERT_EQ(races.size(), 1u);
    EXPECT_EQ(races[0].count, 2u);
}

// -------------------------------------------------------- race gate --

TEST(RaceGate, RacyRegistryIsSeparateFromCleanCorpus)
{
    ASSERT_EQ(racyCompiledSources().size(), 3u);
    ASSERT_EQ(racyCompiledWorkloads().size(), 3u);
    for (const Workload &w : racyCompiledWorkloads()) {
        EXPECT_FALSE(w.multiExecution);
        // Reachable by name, but never part of the clean corpus the
        // sweeps / golden / lint-clean gates iterate.
        EXPECT_EQ(&findWorkload(w.name), &w);
        for (const Workload &c : compiledWorkloads())
            EXPECT_NE(c.name, w.name);
    }
}

TEST(RaceGate, SeededRacyKernelsAreFlaggedWithCorrectRule)
{
    struct Expect
    {
        const char *name;
        const char *rule;
    };
    const Expect expects[] = {
        // Redundant read-modify-write of a global.
        {"c-racy_rmw", kRuleRaceStoreLoad},
        // Redundant pre-read of a[0] racing the sliced store.
        {"c-racy_read", kRuleRaceStoreLoad},
        // Redundant unguarded store racing the sliced loop.
        {"c-racy_stst", kRuleRaceStoreStore},
    };
    for (const Expect &e : expects) {
        AnalysisResult res = analyzeWorkload(findWorkload(e.name));
        EXPECT_GE(res.errors(), 1) << e.name;
        EXPECT_TRUE(hasDiagRule(res, e.rule))
            << renderReport(res, e.name, false);
    }
}

TEST(RaceGate, DynamicRacesOnRacyKernelsAreStaticallyReported)
{
    for (const Workload &w : racyCompiledWorkloads()) {
        RaceGateReport rep = runRaceGate(w, ConfigKind::MMT_FXR, 2);
        EXPECT_TRUE(rep.checked) << w.name;
        EXPECT_TRUE(rep.ok()) << w.name << ": " << rep.unreported.size()
                              << " dynamic race(s) missed statically";
    }
    // The RMW and stale-read kernels race observably; the store/store
    // kernel is dynamically silent (every thread stores the value that
    // is already there), which is exactly why the static side exists.
    RaceGateReport rmw = runRaceGate(findWorkload("c-racy_rmw"),
                                     ConfigKind::MMT_FXR, 2);
    EXPECT_FALSE(rmw.races.empty());
    RaceGateReport read = runRaceGate(findWorkload("c-racy_read"),
                                      ConfigKind::MMT_FXR, 2);
    EXPECT_FALSE(read.races.empty());
}

TEST(RaceGate, CleanKernelHasNoDynamicRaces)
{
    RaceGateReport rep = runRaceGate(findWorkload("c-saxpy"),
                                     ConfigKind::MMT_FXR, 2);
    EXPECT_TRUE(rep.checked);
    EXPECT_TRUE(rep.races.empty());
    EXPECT_TRUE(rep.ok());
}

TEST(RaceGate, MultiExecutionWorkloadIsSkipped)
{
    RaceGateReport rep = runRaceGate(findWorkload("c-saxpy-me"),
                                     ConfigKind::MMT_FXR, 2);
    EXPECT_FALSE(rep.checked);
    EXPECT_TRUE(rep.races.empty());
    EXPECT_TRUE(rep.ok());
}
