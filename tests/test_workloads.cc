/**
 * @file
 * Workload suite tests: registry integrity, assembly validity, and
 * per-kernel functional characteristics (ME instances actually differ,
 * MT kernels partition by tid, perturbation is suppressed for Limit).
 */

#include <gtest/gtest.h>

#include <set>

#include "iasm/assembler.hh"
#include "profile/tracer.hh"
#include "workloads/workload.hh"

using namespace mmt;

TEST(Workloads, RegistryHasAllSixteenApps)
{
    const auto &all = allWorkloads();
    EXPECT_EQ(all.size(), 16u);
    std::set<std::string> names;
    for (const Workload &w : all)
        names.insert(w.name);
    EXPECT_EQ(names.size(), 16u);
    for (const char *n :
         {"ammp", "twolf", "vpr", "equake", "mcf", "vortex", "libsvm",
          "lu", "fft", "water-sp", "ocean", "water-ns", "swaptions",
          "fluidanimate", "blackscholes", "canneal"}) {
        EXPECT_TRUE(names.count(n)) << "missing workload " << n;
    }
}

TEST(Workloads, SuiteTypesMatchTable1)
{
    // SPEC2000 + SVM are multi-execution; SPLASH-2 + Parsec are MT.
    for (const Workload &w : allWorkloads()) {
        bool me = w.suite == "SPEC2000" || w.suite == "SVM";
        EXPECT_EQ(w.multiExecution, me) << w.name;
    }
}

TEST(Workloads, FindWorkloadByName)
{
    EXPECT_EQ(findWorkload("ammp").suite, "SPEC2000");
    EXPECT_EQ(findWorkload("water-ns").suite, "SPLASH-2");
}

/** Parameterized over every workload. */
class WorkloadTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &wl() const { return findWorkload(GetParam()); }
};

TEST_P(WorkloadTest, AssemblesWithMainEntry)
{
    Program p = assemble(wl().source);
    EXPECT_GT(p.code.size(), 10u);
    EXPECT_TRUE(p.symbols.count("main"));
    EXPECT_EQ(p.entry, p.symbol("main"));
}

TEST_P(WorkloadTest, FunctionalRunTerminatesWithOutput)
{
    const Workload &w = wl();
    Program prog = assemble(w.source);
    const int n = 2;
    std::vector<std::unique_ptr<MemoryImage>> images;
    std::vector<MemoryImage *> ptrs;
    int spaces = w.multiExecution ? n : 1;
    for (int i = 0; i < spaces; ++i) {
        images.push_back(std::make_unique<MemoryImage>());
        images.back()->loadData(prog);
        w.initData(*images.back(), prog, i, n, false);
    }
    for (int t = 0; t < n; ++t)
        ptrs.push_back(
            images[spaces == 1 ? 0 : static_cast<std::size_t>(t)].get());
    FunctionalCpu cpu(&prog, ptrs, w.multiExecution);
    cpu.run(5'000'000);
    // Someone emits a checksum.
    std::size_t outputs = 0;
    std::uint64_t executed = 0;
    for (int t = 0; t < n; ++t) {
        outputs += cpu.thread(t).output.size();
        executed += cpu.thread(t).executed;
        EXPECT_TRUE(cpu.thread(t).halted);
    }
    EXPECT_GE(outputs, 1u);
    // Kernels are sized for meaningful simulation (~10k+ dynamic
    // instructions per thread at 2 contexts).
    EXPECT_GT(executed, 20'000u) << w.name;
    EXPECT_LT(executed, 2'000'000u) << w.name;
}

TEST_P(WorkloadTest, MeInstancesDifferUnlessIdentical)
{
    const Workload &w = wl();
    if (!w.multiExecution)
        GTEST_SKIP() << "MT workload";
    Program prog = assemble(w.source);

    auto run_instance = [&](int instance, bool identical) {
        MemoryImage img;
        img.loadData(prog);
        w.initData(img, prog, instance, 2, identical);
        FunctionalCpu cpu(&prog, {&img}, true);
        cpu.run(5'000'000);
        return cpu.thread(0).output;
    };

    auto out0 = run_instance(0, false);
    auto out1 = run_instance(1, false);
    // Perturbed inputs must change the result (otherwise the workload
    // would be trivially 100% execute-identical).
    EXPECT_NE(out0, out1) << w.name;
    // The Limit configuration suppresses the perturbation.
    EXPECT_EQ(run_instance(0, true), run_instance(1, true)) << w.name;
}

TEST_P(WorkloadTest, MtWorkDependsOnThreadCount)
{
    const Workload &w = wl();
    if (w.multiExecution)
        GTEST_SKIP() << "ME workload";
    Program prog = assemble(w.source);

    auto perthread = [&](int n) {
        MemoryImage img;
        img.loadData(prog);
        w.initData(img, prog, 0, n, false);
        std::vector<MemoryImage *> ptrs(static_cast<std::size_t>(n),
                                        &img);
        FunctionalCpu cpu(&prog, ptrs, false);
        cpu.run(5'000'000);
        std::uint64_t max_exec = 0;
        for (int t = 0; t < n; ++t)
            max_exec = std::max(max_exec, cpu.thread(t).executed);
        return max_exec;
    };
    // Doubling the threads roughly halves the per-thread work (the
    // paper: "each thread performs less work than before"). swaptions
    // partitions 4 swaptions, so it also halves 2->4.
    std::uint64_t w2 = perthread(2);
    std::uint64_t w4 = perthread(4);
    EXPECT_LT(static_cast<double>(w4), 0.75 * static_cast<double>(w2))
        << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, WorkloadTest,
    ::testing::Values("ammp", "twolf", "vpr", "equake", "mcf", "vortex",
                      "libsvm", "lu", "fft", "water-sp", "ocean",
                      "water-ns", "swaptions", "fluidanimate",
                      "blackscholes", "canneal"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });
