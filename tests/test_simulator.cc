/**
 * @file
 * Simulator facade tests: RunResult invariants (fractions partition,
 * counters consistent), override plumbing end-to-end, determinism of
 * repeated runs, and MMT monotonicity properties on friendly inputs.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace mmt;

namespace
{

RunResult
quiet(const std::string &app, ConfigKind kind, int threads,
      SimOverrides ov = SimOverrides())
{
    return runWorkload(findWorkload(app), kind, threads, ov,
                       /*check_golden=*/false);
}

} // namespace

TEST(Simulator, FractionsPartition)
{
    for (ConfigKind k : {ConfigKind::Base, ConfigKind::MMT_FXR}) {
        RunResult r = quiet("ammp", k, 2);
        double mode_sum = r.fetchModeFrac[0] + r.fetchModeFrac[1] +
                          r.fetchModeFrac[2];
        EXPECT_NEAR(mode_sum, 1.0, 1e-9);
        double ident_sum = r.identFrac[0] + r.identFrac[1] +
                           r.identFrac[2] + r.identFrac[3];
        EXPECT_NEAR(ident_sum, 1.0, 1e-9);
        EXPECT_GT(r.ipc(), 0.0);
    }
}

TEST(Simulator, DeterministicRepeatRuns)
{
    RunResult a = quiet("twolf", ConfigKind::MMT_FXR, 2);
    RunResult b = quiet("twolf", ConfigKind::MMT_FXR, 2);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedThreadInsts, b.committedThreadInsts);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(Simulator, SameWorkPerConfig)
{
    // Every configuration commits the same architected work.
    RunResult base = quiet("equake", ConfigKind::Base, 2);
    RunResult f = quiet("equake", ConfigKind::MMT_F, 2);
    RunResult fxr = quiet("equake", ConfigKind::MMT_FXR, 2);
    EXPECT_EQ(base.committedThreadInsts, f.committedThreadInsts);
    EXPECT_EQ(base.committedThreadInsts, fxr.committedThreadInsts);
}

TEST(Simulator, SharedFetchHalvesFetchRecordsWhenMerged)
{
    // swaptions stays merged nearly all the time: the number of fetch
    // records approaches half the fetched thread-instructions.
    RunResult r = quiet("swaptions", ConfigKind::MMT_FXR, 2);
    EXPECT_GT(r.fetchModeFrac[0], 0.9);
    EXPECT_LT(static_cast<double>(r.fetchRecords),
              0.6 * static_cast<double>(r.fetchedThreadInsts));
}

TEST(Simulator, BaseHasNoMergedFetch)
{
    RunResult r = quiet("swaptions", ConfigKind::Base, 2);
    EXPECT_EQ(r.fetchRecords, r.fetchedThreadInsts);
    EXPECT_DOUBLE_EQ(r.fetchModeFrac[0], 0.0);
    EXPECT_DOUBLE_EQ(r.identFrac[1] + r.identFrac[2] + r.identFrac[3],
                     0.0);
}

TEST(Simulator, LimitAtLeastAsIdenticalAsFxr)
{
    // Identical inputs can only increase the execute-identical fraction.
    RunResult fxr = quiet("libsvm", ConfigKind::MMT_FXR, 2);
    RunResult lim = quiet("libsvm", ConfigKind::Limit, 2);
    double fxr_exec = fxr.identFrac[2] + fxr.identFrac[3];
    double lim_exec = lim.identFrac[2] + lim.identFrac[3];
    EXPECT_GE(lim_exec + 1e-9, fxr_exec);
}

TEST(Simulator, FhbOverrideChangesBehaviour)
{
    SimOverrides small;
    small.fhbEntries = 8;
    SimOverrides large;
    large.fhbEntries = 128;
    RunResult s = quiet("water-sp", ConfigKind::MMT_FXR, 2, small);
    RunResult l = quiet("water-sp", ConfigKind::MMT_FXR, 2, large);
    // Behaviour must differ measurably (remerge detection capacity).
    EXPECT_TRUE(s.cycles != l.cycles ||
                s.fetchModeFrac[0] != l.fetchModeFrac[0]);
}

TEST(Simulator, MorePortsNeverSlowsMemoryBoundApp)
{
    SimOverrides p2;
    p2.lsPorts = 2;
    SimOverrides p12;
    p12.lsPorts = 12;
    RunResult slow = quiet("mcf", ConfigKind::Base, 2, p2);
    RunResult fast = quiet("mcf", ConfigKind::Base, 2, p12);
    // Allow 1% slack: scaling the MSHR pool with the ports perturbs
    // miss overlap second-order effects.
    EXPECT_LE(static_cast<double>(fast.cycles),
              1.01 * static_cast<double>(slow.cycles));
}

TEST(Simulator, ThreeThreadConfigurationsRun)
{
    // Odd thread counts exercise the partial-pair RST/ITID paths.
    RunResult r = runWorkload(findWorkload("fft"), ConfigKind::MMT_FXR, 3);
    EXPECT_TRUE(r.goldenOk);
    EXPECT_EQ(r.numThreads, 3);
}

TEST(Simulator, SingleThreadDegeneratesGracefully)
{
    RunResult base = quiet("blackscholes", ConfigKind::Base, 1);
    RunResult mmt = quiet("blackscholes", ConfigKind::MMT_FXR, 1);
    // With one thread there is nothing to merge: identical cycle counts.
    EXPECT_EQ(base.cycles, mmt.cycles);
    EXPECT_DOUBLE_EQ(mmt.identFrac[0], 1.0);
}
