/**
 * @file
 * Unit tests for the common infrastructure: ThreadMask/ITID semantics,
 * pair indexing, statistics counters and distributions, and the PRNG.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/thread_mask.hh"

using namespace mmt;

TEST(ThreadMask, BasicSetOperations)
{
    ThreadMask m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.count(), 0);

    m.set(2);
    EXPECT_FALSE(m.empty());
    EXPECT_TRUE(m.contains(2));
    EXPECT_FALSE(m.contains(1));
    EXPECT_EQ(m.count(), 1);
    EXPECT_EQ(m.leader(), 2);

    m.set(0);
    EXPECT_EQ(m.count(), 2);
    EXPECT_EQ(m.leader(), 0);

    m.clear(0);
    EXPECT_EQ(m.leader(), 2);
}

TEST(ThreadMask, FactoryFunctions)
{
    EXPECT_EQ(ThreadMask::single(3).raw(), 0b1000);
    EXPECT_EQ(ThreadMask::firstN(2).raw(), 0b0011);
    EXPECT_EQ(ThreadMask::firstN(4).raw(), 0b1111);
    EXPECT_EQ(ThreadMask::firstN(1).count(), 1);
}

TEST(ThreadMask, SetAlgebra)
{
    ThreadMask a(0b0110);
    ThreadMask b(0b0011);
    EXPECT_EQ((a & b).raw(), 0b0010);
    EXPECT_EQ((a | b).raw(), 0b0111);
    EXPECT_EQ(a.minus(b).raw(), 0b0100);
    EXPECT_TRUE(ThreadMask(0b0010).subsetOf(a));
    EXPECT_FALSE(a.subsetOf(b));
    EXPECT_EQ(a, ThreadMask(0b0110));
}

TEST(ThreadMask, ForEachVisitsAscending)
{
    ThreadMask m(0b1011);
    std::vector<ThreadId> seen;
    m.forEach([&](ThreadId t) { seen.push_back(t); });
    EXPECT_EQ(seen, (std::vector<ThreadId>{0, 1, 3}));
}

TEST(ThreadMask, ToStringThreadZeroLeftmost)
{
    EXPECT_EQ(ThreadMask(0b0001).toString(4), "1000");
    EXPECT_EQ(ThreadMask(0b1000).toString(4), "0001");
    EXPECT_EQ(ThreadMask(0b0110).toString(4), "0110");
}

TEST(ThreadMask, PairIndexIsDenseAndSymmetric)
{
    // 6 unordered pairs for 4 threads, all distinct, in [0, 6).
    std::vector<bool> seen(maxThreadPairs, false);
    for (ThreadId a = 0; a < maxThreads; ++a) {
        for (ThreadId b = a + 1; b < maxThreads; ++b) {
            int idx = ThreadMask::pairIndex(a, b);
            ASSERT_GE(idx, 0);
            ASSERT_LT(idx, maxThreadPairs);
            EXPECT_FALSE(seen[idx]) << "duplicate pair index " << idx;
            seen[idx] = true;
            EXPECT_EQ(idx, ThreadMask::pairIndex(b, a));
            auto [x, y] = ThreadMask::pairThreads(idx);
            EXPECT_EQ(x, a);
            EXPECT_EQ(y, b);
        }
    }
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionBuckets)
{
    Distribution d({16, 32, 64});
    d.sample(1);
    d.sample(16);  // inclusive upper bound
    d.sample(17);
    d.sample(64);
    d.sample(1000); // overflow
    EXPECT_EQ(d.total(), 5u);
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.bucketCount(1), 1u);
    EXPECT_EQ(d.bucketCount(2), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_DOUBLE_EQ(d.cumulativeFraction(0), 0.4);
    EXPECT_DOUBLE_EQ(d.cumulativeFraction(2), 0.8);
}

TEST(Stats, StatGroupLookup)
{
    StatGroup g;
    Counter a;
    a += 7;
    g.addCounter("core.fetched", &a);
    EXPECT_TRUE(g.has("core.fetched"));
    EXPECT_FALSE(g.has("core.missing"));
    EXPECT_EQ(g.get("core.fetched"), 7u);
    EXPECT_NE(g.dump().find("core.fetched 7"), std::string::npos);
}

TEST(Rng, DeterministicAndSeedSensitive)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
    }
    // Different seeds diverge almost surely.
    Rng a2(123);
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_LT(r.below(10), 10u);
    }
}
