/**
 * @file
 * Differential fuzzing: directed-random SPMD programs swept over seeds,
 * run through the full MMT pipeline and compared against the functional
 * interpreter (runWorkload's golden check). Any unsound merge, split,
 * LVIP or register-merging decision corrupts the emitted checksum.
 */

#include <gtest/gtest.h>

#include "analysis/dynamic_bound.hh"
#include "analysis/race_oracle.hh"
#include "iasm/assembler.hh"
#include "profile/random_program.hh"
#include "sim/simulator.hh"

using namespace mmt;

namespace
{

struct FuzzCase
{
    std::uint64_t seed;
    bool me;
    ConfigKind kind;
    int threads;
};

std::string
fuzzName(const ::testing::TestParamInfo<FuzzCase> &info)
{
    const FuzzCase &c = info.param;
    std::string s = c.me ? "me" : "mt";
    s += std::to_string(c.seed);
    s += "_";
    s += configName(c.kind);
    s += "_";
    s += std::to_string(c.threads) + "t";
    for (char &ch : s) {
        if (ch == '-')
            ch = '_';
    }
    return s;
}

} // namespace

class RandomProgramTest : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(RandomProgramTest, PipelineMatchesGoldenModel)
{
    const FuzzCase &c = GetParam();
    RandomProgramParams params;
    params.seed = c.seed;
    params.multiExecution = c.me;
    Workload w = generateRandomWorkload(params);

    // The program must assemble and be non-trivial.
    Program prog = assemble(w.source);
    ASSERT_GT(prog.code.size(), 50u);

    RunResult r = runWorkload(w, c.kind, c.threads);
    EXPECT_TRUE(r.goldenOk) << "seed " << c.seed;
    EXPECT_GT(r.committedThreadInsts, 100u);
}

/**
 * Property: dynamic merged instructions ⊆ statically mergeable. The
 * sharing pass proves some instructions can never be execute-merged
 * (Divergent); if the pipeline merges one anyway, either the RST let
 * non-identical values pass as shared or the analyzer's abstract
 * domain is unsound — both are bugs worth failing loudly on.
 */
TEST_P(RandomProgramTest, DynamicMergingRespectsStaticBound)
{
    const FuzzCase &c = GetParam();
    RandomProgramParams params;
    params.seed = c.seed;
    params.multiExecution = c.me;
    Workload w = generateRandomWorkload(params);

    analysis::AnalysisResult analysis;
    analysis::MergeBoundReport rep = analysis::runMergeBoundCheck(
        w, c.kind, c.threads, &analysis);
    ASSERT_GT(rep.committed, 0u);
    for (const analysis::BoundViolation &v : rep.violations) {
        ADD_FAILURE() << "seed " << c.seed << ": pc 0x" << std::hex
                      << v.pc << std::dec << " (line " << v.line
                      << ") merged " << v.merged
                      << " thread-insts but is statically divergent";
    }
    EXPECT_GE(rep.staticMergeableFrac(), rep.dynamicMergedFrac())
        << "seed " << c.seed;

    // The invariant must also survive the static-hints machinery: with
    // --static-hints both, the frontend consumes the analyzer's own
    // divergence/re-convergence PCs, which changes fetch scheduling —
    // but may never make the pipeline merge a statically-Divergent pc.
    SimOverrides ov;
    ov.staticHints = StaticHintsMode::Both;
    analysis::MergeBoundReport hinted = analysis::runMergeBoundCheck(
        w, c.kind, c.threads, nullptr, nullptr, ov);
    ASSERT_GT(hinted.committed, 0u);
    for (const analysis::BoundViolation &v : hinted.violations) {
        ADD_FAILURE() << "seed " << c.seed << " (static-hints both): pc 0x"
                      << std::hex << v.pc << std::dec << " (line "
                      << v.line << ") merged " << v.merged
                      << " thread-insts but is statically divergent";
    }
    EXPECT_GE(hinted.staticMergeableFrac(), hinted.dynamicMergedFrac())
        << "seed " << c.seed << " (static-hints both)";
}

/**
 * Soundness gate for the race analysis over the fuzz corpus: every
 * dynamic race the happens-before oracle observes in a random MT
 * program must appear in the static may-race pair set (suppressed or
 * not). The generated programs are deterministic by construction, so
 * most runs observe zero races — the property being fuzzed is that the
 * static set never misses one that does show up.
 */
TEST_P(RandomProgramTest, DynamicRacesStaticallyReported)
{
    const FuzzCase &c = GetParam();
    RandomProgramParams params;
    params.seed = c.seed;
    params.multiExecution = c.me;
    Workload w = generateRandomWorkload(params);

    analysis::RaceGateReport rep =
        analysis::runRaceGate(w, c.kind, c.threads);
    EXPECT_EQ(rep.checked, !c.me) << "seed " << c.seed;
    for (const analysis::DynamicRace &r : rep.unreported) {
        ADD_FAILURE() << "seed " << c.seed << ": dynamic "
                      << (r.storeStore ? "store-store" : "store-load")
                      << " race pcs 0x" << std::hex << r.pcA << "/0x"
                      << r.pcB << std::dec
                      << " missing from the static may-race set";
    }
    EXPECT_TRUE(rep.ok()) << "seed " << c.seed;
}

namespace
{

std::vector<FuzzCase>
sweep()
{
    std::vector<FuzzCase> cases;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        bool me = seed % 2 == 0;
        cases.push_back({seed, me, ConfigKind::MMT_FXR, 2});
    }
    // Cross products on a few seeds: configs and thread counts.
    for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
        for (ConfigKind k : {ConfigKind::Base, ConfigKind::MMT_F,
                             ConfigKind::MMT_FX, ConfigKind::MMT_FXR}) {
            cases.push_back({seed, seed % 2 == 0, k, 2});
        }
    }
    for (std::uint64_t seed : {31ull, 32ull, 33ull, 34ull}) {
        cases.push_back({seed, seed % 2 == 0, ConfigKind::MMT_FXR, 4});
    }
    cases.push_back({41, false, ConfigKind::MMT_FXR, 3});
    cases.push_back({42, true, ConfigKind::MMT_FXR, 3});
    return cases;
}

std::vector<FuzzCase>
longSweep()
{
    std::vector<FuzzCase> cases;
    for (std::uint64_t seed = 51; seed <= 56; ++seed)
        cases.push_back({seed, seed % 2 == 0, ConfigKind::MMT_FXR, 4});
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomProgramTest,
                         ::testing::ValuesIn(sweep()), fuzzName);

/** Larger programs (more fragments) at 4 threads. */
class LongRandomProgramTest : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(LongRandomProgramTest, PipelineMatchesGoldenModel)
{
    const FuzzCase &c = GetParam();
    RandomProgramParams params;
    params.seed = c.seed;
    params.multiExecution = c.me;
    params.fragments = 150;
    Workload w = generateRandomWorkload(params);
    RunResult r = runWorkload(w, c.kind, c.threads);
    EXPECT_TRUE(r.goldenOk) << "seed " << c.seed;
}

INSTANTIATE_TEST_SUITE_P(FuzzLong, LongRandomProgramTest,
                         ::testing::ValuesIn(longSweep()), fuzzName);

TEST(RandomProgramGenerator, DeterministicForSeed)
{
    RandomProgramParams p;
    p.seed = 7;
    Workload a = generateRandomWorkload(p);
    Workload b = generateRandomWorkload(p);
    EXPECT_EQ(a.source, b.source);
    p.seed = 8;
    Workload c = generateRandomWorkload(p);
    EXPECT_NE(a.source, c.source);
}

TEST(RandomProgramGenerator, RespectsFragmentBudget)
{
    RandomProgramParams small;
    small.seed = 3;
    small.fragments = 5;
    RandomProgramParams big = small;
    big.fragments = 80;
    Program ps = assemble(generateRandomWorkload(small).source);
    Program pb = assemble(generateRandomWorkload(big).source);
    EXPECT_LT(ps.code.size(), pb.code.size());
}

TEST(RandomProgramGenerator, MeInstancesDiffer)
{
    RandomProgramParams p;
    p.seed = 11;
    p.multiExecution = true;
    Workload w = generateRandomWorkload(p);
    Program prog = assemble(w.source);
    MemoryImage a, b;
    a.loadData(prog);
    b.loadData(prog);
    w.initData(a, prog, 0, 2, false);
    w.initData(b, prog, 1, 2, false);
    EXPECT_FALSE(a.contentEquals(b));
    // Limit mode suppresses the perturbation.
    MemoryImage c, d;
    c.loadData(prog);
    d.loadData(prog);
    w.initData(c, prog, 0, 2, true);
    w.initData(d, prog, 1, 2, true);
    EXPECT_TRUE(c.contentEquals(d));
}
