/**
 * @file
 * SmtCore pipeline tests on small programs: architected-state
 * correctness vs the golden model, stat sanity, halting/draining,
 * barriers, multi-threading, and backpressure (tiny structures).
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "iasm/assembler.hh"
#include "profile/tracer.hh"

using namespace mmt;

namespace
{

struct Rig
{
    Program prog;
    std::vector<std::unique_ptr<MemoryImage>> images;
    std::unique_ptr<SmtCore> core;

    Rig(const std::string &src, CoreParams params,
        int num_spaces = 1)
    {
        prog = assemble(src);
        std::vector<MemoryImage *> ptrs;
        for (int i = 0; i < num_spaces; ++i) {
            images.push_back(std::make_unique<MemoryImage>());
            images.back()->loadData(prog);
        }
        for (int t = 0; t < params.numThreads; ++t)
            ptrs.push_back(images[num_spaces == 1
                                      ? 0
                                      : static_cast<std::size_t>(t)]
                               .get());
        core = std::make_unique<SmtCore>(params, &prog, ptrs);
    }
};

CoreParams
params1t()
{
    CoreParams p;
    p.numThreads = 1;
    return p;
}

} // namespace

TEST(Pipeline, SingleThreadArithmetic)
{
    Rig rig(R"(
main:
    li  r1, 6
    li  r2, 7
    mul r3, r1, r2
    out r3
    halt
)", params1t());
    rig.core->run();
    EXPECT_TRUE(rig.core->done());
    ASSERT_EQ(rig.core->thread(0).output.size(), 1u);
    EXPECT_EQ(rig.core->thread(0).output[0], 42u);
    EXPECT_EQ(rig.core->stats.committedThreadInsts.value(), 5u);
    EXPECT_GT(rig.core->now(), 0u);
}

TEST(Pipeline, LoopProgramCommitsExactInstructionCount)
{
    Rig rig(R"(
main:
    li r1, 0
    li r2, 100
loop:
    add r1, r1, r2
    addi r2, r2, -1
    bnez r2, loop
    out r1
    halt
)", params1t());
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 5050u);
    // 2 + 100*3 + 2 = 304 committed instructions.
    EXPECT_EQ(rig.core->stats.committedThreadInsts.value(), 304u);
}

TEST(Pipeline, MemoryDependences)
{
    Rig rig(R"(
.data
buf: .space 64
.text
main:
    la  r1, buf
    li  r2, 11
    st  r2, 0(r1)
    ld  r3, 0(r1)
    addi r3, r3, 1
    st  r3, 8(r1)
    ld  r4, 8(r1)
    out r4
    halt
)", params1t());
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 12u);
    EXPECT_EQ(rig.core->stats.loads.value(), 2u);
    EXPECT_EQ(rig.core->stats.stores.value(), 2u);
}

TEST(Pipeline, TwoThreadSmtBase)
{
    CoreParams p;
    p.numThreads = 2;
    Rig rig(R"(
.data
acc: .space 32
.text
main:
    slli r1, tid, 3
    la   r2, acc
    add  r2, r2, r1
    addi r3, tid, 50
    st   r3, 0(r2)
    barrier
    bnez tid, done
    la   r2, acc
    ld   r4, 0(r2)
    ld   r5, 8(r2)
    add  r4, r4, r5
    out  r4
done:
    halt
)", p);
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 101u); // 50 + 51
    // Base config: everything fetched in DETECT mode.
    EXPECT_EQ(rig.core->stats.fetchedInMode[0].value(), 0u);
    EXPECT_GT(rig.core->stats.fetchedInMode[1].value(), 0u);
}

TEST(Pipeline, MatchesGoldenModelOnBranchyProgram)
{
    const char *src = R"(
.data
data: .space 512
.text
main:
    li r1, 0
    li r2, 0
    la r3, data
genloop:
    slli r4, r1, 3
    add  r4, r3, r4
    mul  r5, r1, r1
    andi r5, r5, 63
    st   r5, 0(r4)
    addi r1, r1, 1
    slti r6, r1, 64
    bnez r6, genloop
    li r1, 0
sumloop:
    slli r4, r1, 3
    add  r4, r3, r4
    ld   r5, 0(r4)
    slti r6, r5, 32
    beqz r6, skip
    add  r2, r2, r5
skip:
    addi r1, r1, 1
    slti r6, r1, 64
    bnez r6, sumloop
    out  r2
    halt
)";
    Rig rig(src, params1t());
    rig.core->run();

    Program prog = assemble(src);
    MemoryImage gimg;
    gimg.loadData(prog);
    FunctionalCpu golden(&prog, {&gimg}, true);
    golden.run();

    EXPECT_EQ(rig.core->thread(0).output, golden.thread(0).output);
    EXPECT_EQ(rig.core->thread(0).regs, golden.thread(0).regs);
    EXPECT_TRUE(rig.images[0]->contentEquals(gimg));
}

TEST(Pipeline, TinyStructuresStillComplete)
{
    // Backpressure paths: minimal ROB/IQ/LSQ/queues must not deadlock.
    CoreParams p = params1t();
    p.robSize = 4;
    p.iqSize = 2;
    p.lsqSize = 2;
    p.fetchQueueSize = 4;
    p.fetchWidth = 2;
    p.dispatchWidth = 1;
    p.issueWidth = 1;
    p.commitWidth = 1;
    p.numAlu = 1;
    p.numFpu = 1;
    p.lsPorts = 1;
    Rig rig(R"(
.data
buf: .space 128
.text
main:
    li r1, 0
    la r2, buf
tiny:
    slli r3, r1, 3
    add  r3, r2, r3
    st   r1, 0(r3)
    ld   r4, 0(r3)
    fcvt f1, r4
    fmul f1, f1, f1
    fcvti r5, f1
    add  r6, r6, r5
    addi r1, r1, 1
    slti r7, r1, 16
    bnez r7, tiny
    out  r6
    halt
)", p);
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 1240u); // sum of squares 0..15
}

TEST(Pipeline, WritesToR0AreDiscarded)
{
    Rig rig(R"(
main:
    li  r0, 55
    out r0
    halt
)", params1t());
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 0u);
}

TEST(Pipeline, FourThreadBarrierPhases)
{
    CoreParams p;
    p.numThreads = 4;
    Rig rig(R"(
.data
acc: .space 64
.text
main:
    slli r1, tid, 3
    la   r2, acc
    add  r2, r2, r1
    addi r3, tid, 1
    st   r3, 0(r2)
    barrier
    addi r4, tid, 1
    andi r4, r4, 3        # read the next thread's slot
    slli r4, r4, 3
    la   r2, acc
    add  r2, r2, r4
    ld   r5, 0(r2)
    out  r5
    barrier
    halt
)", p);
    rig.core->run();
    // Thread t reads slot (t+1) % 4, which holds (t+1)%4 + 1.
    for (ThreadId t = 0; t < 4; ++t) {
        ASSERT_EQ(rig.core->thread(t).output.size(), 1u);
        EXPECT_EQ(rig.core->thread(t).output[0],
                  static_cast<RegVal>((t + 1) % 4 + 1));
    }
}

TEST(Pipeline, CommitHookSeesMonotoneStageTimes)
{
    // Pipetrace invariant: fetch <= dispatch <= issue <= complete <=
    // commit for every retired instance, and the hook fires exactly
    // committedInstances times.
    CoreParams p;
    p.numThreads = 2;
    p.sharedFetch = true;
    p.sharedExec = true;
    Rig rig(R"(
.data
nthreads: .word 1
.text
main:
    li r1, 0
    li r2, 64
ploop:
    addi r1, r1, 1
    mul  r3, r1, r1
    blt  r1, r2, ploop
    out  r3
    barrier
    halt
)", p);
    std::uint64_t hooks = 0;
    rig.core->setCommitHook([&](const DynInst &di, Cycles commit) {
        ++hooks;
        EXPECT_LE(di.fetchedAt, di.dispatchedAt);
        EXPECT_LE(di.dispatchedAt, di.issuedAt);
        EXPECT_LE(di.issuedAt, di.completeAt);
        EXPECT_LE(di.completeAt, commit);
    });
    rig.core->run();
    EXPECT_EQ(hooks, rig.core->stats.committedInstances.value());
}

TEST(Pipeline, IndirectJumpViaRegister)
{
    Rig rig(R"(
main:
    la   r1, target
    jr   r1
    out  r0
target:
    li   r2, 9
    out  r2
    halt
)", params1t());
    rig.core->run();
    ASSERT_EQ(rig.core->thread(0).output.size(), 1u);
    EXPECT_EQ(rig.core->thread(0).output[0], 9u);
}
