/**
 * @file
 * The workload lint gate (the ctest side of `mmt_cli analyze --all`):
 * every registered workload must analyze with zero error-severity
 * diagnostics, and the static sharing upper bound must dominate the
 * dynamic merge fraction the pipeline actually achieves (ISSUE-3
 * acceptance invariant). A violation means either a broken workload, an
 * unsound abstract domain, or a pipeline that merges non-identical
 * instances.
 */

#include <gtest/gtest.h>

#include "analysis/dynamic_bound.hh"
#include "analysis/race_oracle.hh"

using namespace mmt;
using namespace mmt::analysis;

namespace
{

std::vector<Workload>
gateWorkloads()
{
    std::vector<Workload> all = allWorkloads();
    all.push_back(messagePassingWorkload());
    // The mmtc-compiled corpus rides the same gate: compiler output is
    // the only source of caller-saved spill patterns, multi-call-site
    // helpers, and depth-2 call strings, so hand asm alone would leave
    // the interprocedural machinery untested.
    for (const Workload &w : compiledWorkloads())
        all.push_back(w);
    return all;
}

std::string
describe(const AnalysisResult &res, const std::string &name)
{
    return renderReport(res, name, /*json=*/false);
}

/**
 * Pre-affine-domain mergeable_proven fractions per workload: with only
 * the Known kind sound, "proven" meant every source had exactly equal
 * Known lanes. Measured from the analyzer at the commit before the
 * affine domain landed; the current analyzer must never fall below
 * them, and the strided workloads must beat them strictly (their loop
 * counters and address streams are exactly what Affine recovers).
 */
struct ProvenBaseline
{
    const char *name;
    double frac;
};

constexpr ProvenBaseline kProvenBaselines[] = {
    {"ammp", 18.0 / 64.0},      {"twolf", 14.0 / 46.0},
    {"vpr", 12.0 / 32.0},       {"equake", 24.0 / 66.0},
    {"mcf", 16.0 / 38.0},       {"vortex", 17.0 / 45.0},
    {"libsvm", 20.0 / 60.0},    {"lu", 14.0 / 64.0},
    {"fft", 16.0 / 72.0},       {"water-sp", 24.0 / 82.0},
    {"ocean", 20.0 / 59.0},     {"water-ns", 20.0 / 67.0},
    {"swaptions", 28.0 / 65.0}, {"fluidanimate", 24.0 / 84.0},
    {"blackscholes", 22.0 / 73.0}, {"canneal", 16.0 / 47.0},
    {"mp-ring", 16.0 / 42.0},
    // Compiled corpus, re-pinned for schema v3 (affine-with-base,
    // call-string contexts, spill-slot forwarding).
    {"c-saxpy", 46.0 / 92.0},      {"c-saxpy-me", 58.0 / 92.0},
    {"c-dot", 34.0 / 64.0},        {"c-dot-me", 42.0 / 64.0},
    {"c-stencil1d", 51.0 / 107.0}, {"c-stencil1d-me", 63.0 / 107.0},
    {"c-hist", 65.0 / 110.0},      {"c-hist-me", 77.0 / 110.0},
    {"c-matvec", 61.0 / 109.0},    {"c-matvec-me", 73.0 / 109.0},
    {"c-psum", 72.0 / 145.0},      {"c-psum-me", 88.0 / 145.0},
    {"c-chain", 64.0 / 102.0},     {"c-chain-me", 83.0 / 102.0},
    {"c-spill", 84.0 / 173.0},     {"c-spill-me", 136.0 / 173.0},
    {"c-poly", 69.0 / 111.0},      {"c-poly-me", 91.0 / 111.0},
    {"c-bank", 54.0 / 87.0},       {"c-bank-me", 70.0 / 87.0},
    {"c-window", 64.0 / 98.0},     {"c-window-me", 79.0 / 98.0},
    {"c-pair", 59.0 / 104.0},      {"c-pair-me", 85.0 / 104.0},
    {"c-mixed", 62.0 / 97.0},      {"c-mixed-me", 77.0 / 97.0},
};

/**
 * What the *flat* (context-insensitive, no spill forwarding) analysis
 * proves on the spill-pattern stress kernels — the acceptance bar the
 * interprocedural machinery must strictly beat. Measured by running
 * the schema-v2 analyzer over the same compiled output.
 */
constexpr ProvenBaseline kFlatStressBaselines[] = {
    {"c-chain", 47.0 / 102.0},  {"c-chain-me", 64.0 / 102.0},
    {"c-spill", 52.0 / 173.0},  {"c-spill-me", 95.0 / 173.0},
    {"c-poly", 52.0 / 111.0},   {"c-poly-me", 72.0 / 111.0},
    {"c-bank", 49.0 / 87.0},    {"c-bank-me", 63.0 / 87.0},
    {"c-window", 61.0 / 98.0},  {"c-window-me", 74.0 / 98.0},
    {"c-pair", 41.0 / 104.0},   {"c-pair-me", 64.0 / 104.0},
    {"c-mixed", 46.0 / 97.0},   {"c-mixed-me", 60.0 / 97.0},
};

double
provenBaseline(const std::string &name)
{
    for (const ProvenBaseline &b : kProvenBaselines)
        if (name == b.name)
            return b.frac;
    ADD_FAILURE() << "no proven-precision baseline recorded for '"
                  << name << "' — measure and add one";
    return 1.0;
}

/** Workloads with strided loops where Affine must strictly help. */
bool
isStridedWorkload(const std::string &name)
{
    return name == "lu" || name == "fft" || name == "ocean";
}

} // namespace

class WorkloadLintGate : public ::testing::TestWithParam<Workload>
{
};

TEST_P(WorkloadLintGate, NoErrorSeverityDiagnostics)
{
    const Workload &w = GetParam();
    AnalysisResult res = analyzeWorkload(w);
    EXPECT_EQ(res.errors(), 0) << describe(res, w.name);
}

TEST_P(WorkloadLintGate, StaticBoundDominatesDynamicMerging)
{
    const Workload &w = GetParam();
    AnalysisResult analysis;
    MergeBoundReport rep =
        runMergeBoundCheck(w, ConfigKind::MMT_FXR, 2, &analysis);

    ASSERT_GT(rep.committed, 0u);
    // Per-PC invariant: a merged pc is never statically Divergent.
    for (const BoundViolation &v : rep.violations) {
        ADD_FAILURE() << w.name << ": pc 0x" << std::hex << v.pc
                      << std::dec << " (line " << v.line << ") merged "
                      << v.merged
                      << " thread-insts but is statically divergent";
    }
    // Weighted consequence: static upper bound >= dynamic fraction.
    EXPECT_GE(rep.staticMergeableFrac(), rep.dynamicMergedFrac())
        << w.name;
}

TEST(CallBearingGate, StaticBoundHoldsUnderReturnMatching)
{
    // No registered workload uses calls, so the interprocedural CFG
    // gets its own dynamic soundness check: a call-bearing kernel with
    // a tid-divergent hammock around a shared helper, run through the
    // same static-vs-dynamic invariant as the registered suite.
    Workload w;
    w.name = "call-hammock";
    w.suite = "gate";
    w.source = R"(
main:
    mv   r1, tid
    li   r2, 0
    bnez r1, odd
    call accum
    j    join
odd:
    call accum
    call accum
join:
    barrier
    out  r2
    halt
accum:
    addi r2, r2, 7
    ret
)";
    w.initData = [](MemoryImage &, const Program &, int, int, bool) {};
    AnalysisResult analysis;
    MergeBoundReport rep =
        runMergeBoundCheck(w, ConfigKind::MMT_FXR, 2, &analysis);
    ASSERT_GT(rep.committed, 0u);
    for (const BoundViolation &v : rep.violations) {
        ADD_FAILURE() << "pc 0x" << std::hex << v.pc << std::dec
                      << " (line " << v.line << ") merged " << v.merged
                      << " thread-insts but is statically divergent";
    }
    EXPECT_GE(rep.staticMergeableFrac(), rep.dynamicMergedFrac());
    // The helper's ret is resolved by call-site matching, so no block
    // in this program needs the conservative fallback.
    for (const BasicBlock &b : analysis.cfg->blocks())
        EXPECT_TRUE(!b.hasIndirect || b.indirectMatched);
}

TEST_P(WorkloadLintGate, DynamicRacesStaticallyReported)
{
    // The registered suites are race-free programs: the happens-before
    // oracle must observe zero dynamic races, and (vacuously) every
    // observed race must map to a static may-race pair. ME workloads
    // have private address spaces — the gate reports them unchecked.
    const Workload &w = GetParam();
    RaceGateReport rep = runRaceGate(w, ConfigKind::MMT_FXR, 2);
    EXPECT_EQ(rep.checked, !w.multiExecution) << w.name;
    for (const DynamicRace &r : rep.races) {
        ADD_FAILURE() << w.name << ": dynamic "
                      << (r.storeStore ? "store-store" : "store-load")
                      << " race pcs 0x" << std::hex << r.pcA << "/0x"
                      << r.pcB << " addr 0x" << r.addr << std::dec
                      << " (x" << r.count << ")";
    }
    EXPECT_TRUE(rep.ok()) << w.name;
}

TEST_P(WorkloadLintGate, AffineDomainDoesNotRegressProvenPrecision)
{
    const Workload &w = GetParam();
    AnalysisResult res = analyzeWorkload(w);
    double baseline = provenBaseline(w.name);
    double proven = res.mergeableProvenFrac();
    EXPECT_GE(proven, baseline) << describe(res, w.name);
    if (isStridedWorkload(w.name)) {
        // Acceptance criterion: strided workloads must improve, not
        // just hold — their induction variables used to die at the
        // loop join and now stabilize as Affine.
        EXPECT_GT(proven, baseline) << describe(res, w.name);
    }
    // The stress kernels must strictly beat the flat analysis: their
    // precision comes from call-string contexts keeping spill frames
    // separate per call site, which is exactly what this gate guards.
    for (const ProvenBaseline &b : kFlatStressBaselines) {
        if (w.name == b.name) {
            EXPECT_GT(proven, b.frac) << describe(res, w.name);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadLintGate,
                         ::testing::ValuesIn(gateWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &i) {
                             std::string n = i.param.name;
                             for (char &c : n)
                                 if (c == '-' || c == '.')
                                     c = '_';
                             return n;
                         });
