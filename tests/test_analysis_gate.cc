/**
 * @file
 * The workload lint gate (the ctest side of `mmt_cli analyze --all`):
 * every registered workload must analyze with zero error-severity
 * diagnostics, and the static sharing upper bound must dominate the
 * dynamic merge fraction the pipeline actually achieves (ISSUE-3
 * acceptance invariant). A violation means either a broken workload, an
 * unsound abstract domain, or a pipeline that merges non-identical
 * instances.
 */

#include <gtest/gtest.h>

#include "analysis/dynamic_bound.hh"

using namespace mmt;
using namespace mmt::analysis;

namespace
{

std::vector<Workload>
gateWorkloads()
{
    std::vector<Workload> all = allWorkloads();
    all.push_back(messagePassingWorkload());
    return all;
}

std::string
describe(const AnalysisResult &res, const std::string &name)
{
    return renderReport(res, name, /*json=*/false);
}

} // namespace

class WorkloadLintGate : public ::testing::TestWithParam<Workload>
{
};

TEST_P(WorkloadLintGate, NoErrorSeverityDiagnostics)
{
    const Workload &w = GetParam();
    AnalysisResult res = analyzeWorkload(w);
    EXPECT_EQ(res.errors(), 0) << describe(res, w.name);
}

TEST_P(WorkloadLintGate, StaticBoundDominatesDynamicMerging)
{
    const Workload &w = GetParam();
    AnalysisResult analysis;
    MergeBoundReport rep =
        runMergeBoundCheck(w, ConfigKind::MMT_FXR, 2, &analysis);

    ASSERT_GT(rep.committed, 0u);
    // Per-PC invariant: a merged pc is never statically Divergent.
    for (const BoundViolation &v : rep.violations) {
        ADD_FAILURE() << w.name << ": pc 0x" << std::hex << v.pc
                      << std::dec << " (line " << v.line << ") merged "
                      << v.merged
                      << " thread-insts but is statically divergent";
    }
    // Weighted consequence: static upper bound >= dynamic fraction.
    EXPECT_GE(rep.staticMergeableFrac(), rep.dynamicMergedFrac())
        << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadLintGate,
                         ::testing::ValuesIn(gateWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &i) {
                             std::string n = i.param.name;
                             for (char &c : n)
                                 if (c == '-' || c == '.')
                                     c = '_';
                             return n;
                         });
