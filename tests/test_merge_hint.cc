/**
 * @file
 * MERGEHINT tests (Thread Fusion-style software re-merge hints, cf.
 * paper §2): timing-only semantics, merge-at-hint behaviour, timeout
 * safety, and golden-model neutrality.
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "iasm/assembler.hh"
#include "profile/tracer.hh"

using namespace mmt;

namespace
{

// Threads take different-length paths each iteration; a hint marks the
// join point. Without hints, remerge relies on FHB/PC coincidence while
// both sides keep running; with hints the first arriver pauses briefly.
std::string
kernel(bool with_hint)
{
    std::string join = with_hint ? "    mergehint\n" : "";
    return R"(
.data
nthreads: .word 1
.text
main:
    li   r1, 0
    li   r2, 30
loop:
    andi r3, r1, 1
    bnez tid, odd
    addi r4, r4, 1
    j    join
odd:
    addi r4, r4, 2
    addi r5, r5, 1
    addi r5, r5, 1
    addi r5, r5, 1
    addi r5, r5, 1
    j    join
join:
)" + join + R"(
    addi r1, r1, 1
    blt  r1, r2, loop
    out  r4
    barrier
    halt
)";
}

struct Result
{
    Cycles cycles;
    std::uint64_t hintWaits;
    std::uint64_t hintMerges;
    double mergeFrac;
    std::vector<RegVal> out0;
    std::vector<RegVal> out1;
};

Result
run(const std::string &src, Cycles hint_wait)
{
    Program prog = assemble(src);
    MemoryImage img;
    img.loadData(prog);
    img.write64(prog.symbol("nthreads"), 2);
    CoreParams p;
    p.numThreads = 2;
    p.sharedFetch = true;
    p.sharedExec = true;
    p.regMerge = true;
    p.mergeHintWait = hint_wait;
    SmtCore core(p, &prog, {&img, &img});
    core.run();
    Result r;
    r.cycles = core.now();
    r.hintWaits = core.stats.hintWaits.value();
    r.hintMerges = core.stats.hintMerges.value();
    r.mergeFrac = static_cast<double>(core.stats.fetchedInMode[0].value()) /
                  static_cast<double>(core.stats.fetchedThreadInsts.value());
    r.out0 = core.thread(0).output;
    r.out1 = core.thread(1).output;
    return r;
}

} // namespace

TEST(MergeHint, ArchitecturallyNeutral)
{
    // Same program results with and without hint waiting enabled.
    Result with = run(kernel(true), 24);
    Result without = run(kernel(true), 0);
    EXPECT_EQ(with.out0, without.out0);
    EXPECT_EQ(with.out1, without.out1);
    EXPECT_EQ(with.out0[0], 30u);
    EXPECT_EQ(with.out1[0], 60u);
}

TEST(MergeHint, PausesAndMergesDivergedGroups)
{
    Result r = run(kernel(true), 24);
    EXPECT_GT(r.hintWaits, 0u);
    EXPECT_GT(r.hintMerges, 0u);
}

TEST(MergeHint, ImprovesMergeResidency)
{
    Result with = run(kernel(true), 24);
    Result without = run(kernel(false), 24);
    // Hints can only help a kernel whose paths have asymmetric lengths.
    EXPECT_GE(with.mergeFrac + 1e-9, without.mergeFrac);
}

TEST(MergeHint, NoOpWhenFullyMerged)
{
    // A hint in never-diverging code must not pause anyone.
    const char *src = R"(
.data
nthreads: .word 1
.text
main:
    li  r1, 10
spin:
    mergehint
    addi r1, r1, -1
    bnez r1, spin
    barrier
    halt
)";
    Result r = run(src, 24);
    EXPECT_EQ(r.hintWaits, 0u);
}

TEST(MergeHint, TimeoutPreventsDeadlock)
{
    // Thread 1 never reaches the hint again (it halts); thread 0's wait
    // must time out rather than hang.
    const char *src = R"(
.data
nthreads: .word 1
.text
main:
    bnez tid, quit
    mergehint
    li  r1, 1
    out r1
    halt
quit:
    halt
)";
    Program prog = assemble(src);
    MemoryImage img;
    img.loadData(prog);
    img.write64(prog.symbol("nthreads"), 2);
    CoreParams p;
    p.numThreads = 2;
    p.sharedFetch = true;
    p.sharedExec = true;
    p.mergeHintWait = 16;
    SmtCore core(p, &prog, {&img, &img});
    core.run();
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.thread(0).output[0], 1u);
}

TEST(MergeHint, GoldenModelTreatsHintAsNop)
{
    Program prog = assemble(kernel(true));
    MemoryImage img;
    img.loadData(prog);
    img.write64(prog.symbol("nthreads"), 2);
    FunctionalCpu cpu(&prog, {&img, &img}, false);
    cpu.run();
    EXPECT_EQ(cpu.thread(0).output[0], 30u);
    EXPECT_EQ(cpu.thread(1).output[0], 60u);
}
