/**
 * @file
 * Unit tests for the MMT-RISC ISA: static instruction properties and the
 * functional semantics in exec::.
 */

#include <gtest/gtest.h>

#include "isa/exec.hh"
#include "isa/isa.hh"

using namespace mmt;

namespace
{

Instruction
mk(Opcode op, RegIndex rd = -1, RegIndex rs1 = -1, RegIndex rs2 = -1,
   std::int64_t imm = 0)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.imm = imm;
    return i;
}

RegVal
alu(Opcode op, RegVal a, RegVal b, std::int64_t imm = 0)
{
    return exec::evalAlu(mk(op, 1, 2, 3, imm), a, b, 0x1000);
}

} // namespace

TEST(IsaInfo, PropertyFlags)
{
    EXPECT_TRUE(instInfo(Opcode::LD).isLoad);
    EXPECT_FALSE(instInfo(Opcode::LD).isStore);
    EXPECT_TRUE(instInfo(Opcode::FST).isStore);
    EXPECT_TRUE(instInfo(Opcode::BEQ).isCondBranch);
    EXPECT_TRUE(instInfo(Opcode::J).isUncondJump);
    EXPECT_TRUE(instInfo(Opcode::HALT).isSyscall);
    EXPECT_TRUE(instInfo(Opcode::JAL).writesDest);
    EXPECT_FALSE(instInfo(Opcode::J).writesDest);
    EXPECT_TRUE(instInfo(Opcode::ST).readsSrc2); // store data register
}

TEST(IsaInfo, OpClassAssignments)
{
    EXPECT_EQ(instInfo(Opcode::ADD).opClass, OpClass::IntAlu);
    EXPECT_EQ(instInfo(Opcode::MUL).opClass, OpClass::IntMult);
    EXPECT_EQ(instInfo(Opcode::FDIV).opClass, OpClass::FpDiv);
    EXPECT_EQ(instInfo(Opcode::FEXP).opClass, OpClass::FpLong);
    EXPECT_EQ(instInfo(Opcode::LD).opClass, OpClass::MemRead);
    EXPECT_EQ(instInfo(Opcode::BNE).opClass, OpClass::Branch);
}

TEST(Exec, IntegerArithmetic)
{
    EXPECT_EQ(alu(Opcode::ADD, 2, 3), 5u);
    EXPECT_EQ(alu(Opcode::SUB, 2, 3), static_cast<RegVal>(-1));
    EXPECT_EQ(alu(Opcode::MUL, 7, 6), 42u);
    EXPECT_EQ(alu(Opcode::DIV, 42, 5), 8u);
    EXPECT_EQ(alu(Opcode::DIV, static_cast<RegVal>(-42), 5),
              static_cast<RegVal>(-8));
    EXPECT_EQ(alu(Opcode::REM, 42, 5), 2u);
    // Division by zero is defined (no trap in this ISA).
    EXPECT_EQ(alu(Opcode::DIV, 1, 0), ~RegVal(0));
    EXPECT_EQ(alu(Opcode::REM, 7, 0), 7u);
}

TEST(Exec, LogicAndShifts)
{
    EXPECT_EQ(alu(Opcode::AND, 0b1100, 0b1010), 0b1000u);
    EXPECT_EQ(alu(Opcode::OR, 0b1100, 0b1010), 0b1110u);
    EXPECT_EQ(alu(Opcode::XOR, 0b1100, 0b1010), 0b0110u);
    EXPECT_EQ(alu(Opcode::SLL, 1, 8), 256u);
    EXPECT_EQ(alu(Opcode::SRL, ~RegVal(0), 63), 1u);
    EXPECT_EQ(alu(Opcode::SRA, static_cast<RegVal>(-8), 2),
              static_cast<RegVal>(-2));
    // Shift amounts use only the low 6 bits.
    EXPECT_EQ(alu(Opcode::SLL, 1, 64), 1u);
}

TEST(Exec, Comparisons)
{
    EXPECT_EQ(alu(Opcode::SLT, static_cast<RegVal>(-1), 1), 1u);
    EXPECT_EQ(alu(Opcode::SLTU, static_cast<RegVal>(-1), 1), 0u);
    EXPECT_EQ(alu(Opcode::SLTI, 3, 0, 5), 1u);
    EXPECT_EQ(alu(Opcode::SLTI, 7, 0, 5), 0u);
}

TEST(Exec, Immediates)
{
    EXPECT_EQ(alu(Opcode::ADDI, 10, 0, -3), 7u);
    EXPECT_EQ(alu(Opcode::ANDI, 0b111, 0, 0b101), 0b101u);
    EXPECT_EQ(alu(Opcode::LUI, 0, 0, 123456789), 123456789u);
    EXPECT_EQ(alu(Opcode::SRAI, static_cast<RegVal>(-16), 0, 2),
              static_cast<RegVal>(-4));
}

TEST(Exec, FloatingPoint)
{
    auto f = [](double d) { return exec::fromF(d); };
    EXPECT_DOUBLE_EQ(exec::toF(alu(Opcode::FADD, f(1.5), f(2.25))), 3.75);
    EXPECT_DOUBLE_EQ(exec::toF(alu(Opcode::FMUL, f(3.0), f(-2.0))), -6.0);
    EXPECT_DOUBLE_EQ(exec::toF(alu(Opcode::FDIV, f(1.0), f(4.0))), 0.25);
    EXPECT_DOUBLE_EQ(exec::toF(alu(Opcode::FSQRT, f(9.0), 0)), 3.0);
    EXPECT_DOUBLE_EQ(exec::toF(alu(Opcode::FABS, f(-2.5), 0)), 2.5);
    EXPECT_DOUBLE_EQ(exec::toF(alu(Opcode::FMIN, f(1.0), f(2.0))), 1.0);
    EXPECT_DOUBLE_EQ(exec::toF(alu(Opcode::FMAX, f(1.0), f(2.0))), 2.0);
    EXPECT_EQ(alu(Opcode::FCLT, f(1.0), f(2.0)), 1u);
    EXPECT_EQ(alu(Opcode::FCLE, f(2.0), f(2.0)), 1u);
    EXPECT_EQ(alu(Opcode::FCEQ, f(2.0), f(2.5)), 0u);
    // flog of a non-positive value is defined as 0 (no trap).
    EXPECT_DOUBLE_EQ(exec::toF(alu(Opcode::FLOG, f(-1.0), 0)), 0.0);
}

TEST(Exec, Conversions)
{
    EXPECT_DOUBLE_EQ(exec::toF(alu(Opcode::FCVT, static_cast<RegVal>(-7),
                                   0)), -7.0);
    EXPECT_EQ(alu(Opcode::FCVTI, exec::fromF(3.99), 0), 3u);
    EXPECT_EQ(alu(Opcode::FCVTI, exec::fromF(-3.99), 0),
              static_cast<RegVal>(-3));
}

TEST(Exec, JumpLinkValues)
{
    EXPECT_EQ(exec::evalAlu(mk(Opcode::JAL, regRa), 0, 0, 0x1000),
              0x1004u);
    EXPECT_EQ(exec::evalAlu(mk(Opcode::JALR, regRa, 5), 0x2000, 0, 0x1010),
              0x1014u);
}

TEST(Exec, ConditionalBranches)
{
    auto br = [](Opcode op, RegVal a, RegVal b) {
        return exec::evalBranch(mk(op, -1, 1, 2, 0x3000), a, b, 0x1000);
    };
    EXPECT_TRUE(br(Opcode::BEQ, 5, 5).taken);
    EXPECT_FALSE(br(Opcode::BEQ, 5, 6).taken);
    EXPECT_EQ(br(Opcode::BEQ, 5, 5).target, 0x3000u);
    EXPECT_EQ(br(Opcode::BEQ, 5, 6).target, 0x1004u);
    EXPECT_TRUE(br(Opcode::BLT, static_cast<RegVal>(-2), 1).taken);
    EXPECT_FALSE(br(Opcode::BLTU, static_cast<RegVal>(-2), 1).taken);
    EXPECT_TRUE(br(Opcode::BGEU, static_cast<RegVal>(-2), 1).taken);
}

TEST(Exec, IndirectJumps)
{
    BranchOut out = exec::evalBranch(mk(Opcode::JR, -1, 5), 0x4000, 0,
                                     0x1000);
    EXPECT_TRUE(out.taken);
    EXPECT_EQ(out.target, 0x4000u);
}

TEST(Exec, EffectiveAddress)
{
    EXPECT_EQ(exec::effectiveAddr(mk(Opcode::LD, 1, 2, -1, 16), 0x100),
              0x110u);
    EXPECT_EQ(exec::effectiveAddr(mk(Opcode::ST, -1, 2, 3, -8), 0x100),
              0xF8u);
}

TEST(IsaDisassembly, RoundTripMnemonics)
{
    EXPECT_EQ(mk(Opcode::ADD, 1, 2, 3).toString(), "add r1, r2, r3");
    EXPECT_EQ(mk(Opcode::LD, 4, 5, -1, 8).toString(), "ld r4, 8(r5)");
    EXPECT_EQ(mk(Opcode::ST, -1, 5, 6, 8).toString(), "st r6, 8(r5)");
    EXPECT_EQ(mk(Opcode::FADD, fpReg(1), fpReg(2), fpReg(3)).toString(),
              "fadd f1, f2, f3");
    EXPECT_EQ(mk(Opcode::HALT).toString(), "halt");
}
