/**
 * @file
 * Configuration preset tests (Table 4/5): feature flags per ConfigKind,
 * override plumbing (FHB size, load/store ports + MSHR scaling, fetch
 * width, trace cache), and the experiment helpers.
 */

#include <gtest/gtest.h>

#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "workloads/workload.hh"

using namespace mmt;

TEST(Configs, Table5FeatureMatrix)
{
    const Workload &mt = findWorkload("lu");
    const Workload &me = findWorkload("ammp");

    CoreParams base = makeCoreParams(ConfigKind::Base, mt, 2);
    EXPECT_FALSE(base.sharedFetch);
    EXPECT_FALSE(base.sharedExec);
    EXPECT_FALSE(base.regMerge);

    CoreParams f = makeCoreParams(ConfigKind::MMT_F, mt, 2);
    EXPECT_TRUE(f.sharedFetch);
    EXPECT_FALSE(f.sharedExec);

    CoreParams fx = makeCoreParams(ConfigKind::MMT_FX, mt, 2);
    EXPECT_TRUE(fx.sharedFetch);
    EXPECT_TRUE(fx.sharedExec);
    EXPECT_FALSE(fx.regMerge);

    CoreParams fxr = makeCoreParams(ConfigKind::MMT_FXR, mt, 2);
    EXPECT_TRUE(fxr.regMerge);
    EXPECT_FALSE(fxr.forceTidZero);

    CoreParams lim = makeCoreParams(ConfigKind::Limit, mt, 2);
    EXPECT_TRUE(lim.regMerge);
    EXPECT_TRUE(lim.forceTidZero);
    EXPECT_FALSE(lim.multiExecution); // MT workloads stay shared-memory

    EXPECT_TRUE(makeCoreParams(ConfigKind::Base, me, 2).multiExecution);
}

TEST(Configs, Table4Defaults)
{
    CoreParams p = makeCoreParams(ConfigKind::Base, findWorkload("lu"), 4);
    EXPECT_EQ(p.numThreads, 4);
    EXPECT_EQ(p.issueWidth, 8);
    EXPECT_EQ(p.commitWidth, 8);
    EXPECT_EQ(p.robSize, 256);
    EXPECT_EQ(p.lsqSize, 64);
    EXPECT_EQ(p.numAlu, 6);
    EXPECT_EQ(p.numFpu, 3);
    EXPECT_EQ(p.fhbEntries, 32);
    EXPECT_EQ(p.lvipEntries, 4096);
    EXPECT_EQ(p.bpred.phtEntries, 1024);
    EXPECT_EQ(p.bpred.historyBits, 10);
    EXPECT_EQ(p.bpred.btbEntries, 2048);
    EXPECT_EQ(p.bpred.rasEntries, 16);
    EXPECT_EQ(p.mem.l1Latency, 1u);
    EXPECT_EQ(p.mem.l2Latency, 6u);
    EXPECT_EQ(p.mem.dramLatency, 200u);
    EXPECT_EQ(p.traceCache.sizeBytes, 1024u * 1024u);
    EXPECT_TRUE(p.traceCache.enabled);
}

TEST(Configs, OverridesApply)
{
    SimOverrides ov;
    ov.fhbEntries = 128;
    ov.lsPorts = 12;
    ov.fetchWidth = 32;
    ov.disableTraceCache = true;
    CoreParams p =
        makeCoreParams(ConfigKind::MMT_FXR, findWorkload("lu"), 2, ov);
    EXPECT_EQ(p.fhbEntries, 128);
    EXPECT_EQ(p.lsPorts, 12);
    EXPECT_EQ(p.fetchWidth, 32);
    EXPECT_FALSE(p.traceCache.enabled);
    // MSHRs scale with the port count (paper Figure 7(b)).
    EXPECT_EQ(p.mem.numMshrs, 48);
}

TEST(Configs, ExplicitMshrOverrideWins)
{
    SimOverrides ov;
    ov.lsPorts = 4;
    ov.mshrs = 7;
    CoreParams p =
        makeCoreParams(ConfigKind::Base, findWorkload("lu"), 2, ov);
    EXPECT_EQ(p.mem.numMshrs, 7);
}

TEST(Configs, NamesAndDescription)
{
    EXPECT_STREQ(configName(ConfigKind::Base), "Base");
    EXPECT_STREQ(configName(ConfigKind::MMT_FXR), "MMT-FXR");
    std::string t4 = describeTable4();
    EXPECT_NE(t4.find("ROB"), std::string::npos);
    EXPECT_NE(t4.find("Trace cache"), std::string::npos);
}

TEST(Experiment, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Experiment, FormatTable)
{
    std::string s = formatTable({"app", "x"}, {{"ammp", "1.25"},
                                               {"longer-name", "0.98"}});
    EXPECT_NE(s.find("ammp"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Experiment, FmtDecimals)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(2.0, 3), "2.000");
}

TEST(Experiment, WorkloadNamesOrder)
{
    auto names = workloadNames();
    ASSERT_EQ(names.size(), 16u);
    EXPECT_EQ(names.front(), "ammp");
    EXPECT_EQ(names.back(), "canneal");
}
