/**
 * @file
 * Tests for the core's statistics registry (registerStats / dumpStats)
 * and the assembler/disassembler round-trip property.
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "iasm/assembler.hh"

using namespace mmt;

namespace
{

std::unique_ptr<SmtCore>
runSmall(Program &prog, MemoryImage &img, const CoreParams &p)
{
    prog = assemble(R"(
main:
    li  r1, 5
    li  r2, 6
    mul r3, r1, r2
    out r3
    halt
)");
    img.loadData(prog);
    std::vector<MemoryImage *> ptrs(static_cast<std::size_t>(p.numThreads),
                                    &img);
    auto core = std::make_unique<SmtCore>(p, &prog, ptrs);
    core->run();
    return core;
}

} // namespace

TEST(StatsDump, RegistersCoreCounters)
{
    Program prog;
    MemoryImage img;
    CoreParams p;
    p.numThreads = 2;
    p.sharedFetch = true;
    p.sharedExec = true;
    p.regMerge = true;
    auto core = runSmall(prog, img, p);

    StatGroup g;
    core->registerStats(g);
    EXPECT_TRUE(g.has("fetch.records"));
    EXPECT_TRUE(g.has("commit.threadInsts"));
    EXPECT_TRUE(g.has("mmt.rst.lookups"));
    EXPECT_TRUE(g.has("mmt.fhb0.searches"));
    EXPECT_TRUE(g.has("mmt.fhb1.searches"));
    EXPECT_FALSE(g.has("mmt.fhb2.searches")); // only 2 threads
    EXPECT_FALSE(g.has("msg.sends"));         // no network attached
    EXPECT_TRUE(g.has("mmt.sync.catchupAborted"));
    EXPECT_EQ(g.get("commit.threadInsts"), 10u);
    EXPECT_EQ(g.get("fetch.records"), 5u);

    // The abort counter also reaches the JSON stats dump (the sweep
    // artifacts and --stats-json read it from there).
    std::string json = core->dumpStatsJson();
    EXPECT_NE(json.find("\"mmt.sync.catchupAborted\""), std::string::npos);
}

TEST(StatsDump, DumpContainsCyclesAndNames)
{
    Program prog;
    MemoryImage img;
    CoreParams p;
    p.numThreads = 1;
    auto core = runSmall(prog, img, p);
    std::string dump = core->dumpStats();
    EXPECT_NE(dump.find("cycles "), std::string::npos);
    EXPECT_NE(dump.find("commit.threadInsts 5"), std::string::npos);
    EXPECT_NE(dump.find("mem.l1i.accesses"), std::string::npos);
}

TEST(StatsDump, ModeCountsPartitionFetched)
{
    Program prog;
    MemoryImage img;
    CoreParams p;
    p.numThreads = 2;
    p.sharedFetch = true;
    auto core = runSmall(prog, img, p);
    StatGroup g;
    core->registerStats(g);
    EXPECT_EQ(g.get("fetch.mode.merge") + g.get("fetch.mode.detect") +
                  g.get("fetch.mode.catchup"),
              g.get("fetch.threadInsts"));
}

// ---- disassemble -> assemble round trip -------------------------------

class DisasmRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(DisasmRoundTrip, ReassemblesIdentically)
{
    // Build one representative instruction per opcode, print it, wrap it
    // in a program, and reassemble; the decoded instruction must match.
    auto op = static_cast<Opcode>(GetParam());
    const InstInfo &info = instInfo(op);
    Instruction in;
    in.op = op;
    bool fp_dest = op == Opcode::FADD || op == Opcode::FSUB ||
                   op == Opcode::FMUL || op == Opcode::FDIV ||
                   op == Opcode::FSQRT || op == Opcode::FNEG ||
                   op == Opcode::FABS || op == Opcode::FMIN ||
                   op == Opcode::FMAX || op == Opcode::FEXP ||
                   op == Opcode::FLOG || op == Opcode::FLI ||
                   op == Opcode::FMV || op == Opcode::FCVT ||
                   op == Opcode::FLD;
    bool fp_src = fp_dest || op == Opcode::FCVTI || op == Opcode::FCLT ||
                  op == Opcode::FCLE || op == Opcode::FCEQ ||
                  op == Opcode::FST;
    if (info.writesDest) {
        // JAL/JALR link implicitly through ra in assembly syntax.
        if (op == Opcode::JAL || op == Opcode::JALR)
            in.rd = regRa;
        else
            in.rd = fp_dest ? fpReg(3) : 3;
    }
    if (info.readsSrc1) {
        bool s1_fp = fp_src && op != Opcode::FCVT && op != Opcode::FLD &&
                     op != Opcode::FST && !info.isLoad &&
                     op != Opcode::JR && op != Opcode::JALR;
        if (op == Opcode::FCVTI || op == Opcode::FCLT ||
            op == Opcode::FCLE || op == Opcode::FCEQ)
            s1_fp = true;
        in.rs1 = s1_fp ? fpReg(4) : 4;
    }
    if (info.readsSrc2) {
        bool s2_fp = fp_src && op != Opcode::ST && op != Opcode::SEND;
        if (op == Opcode::FST)
            s2_fp = true;
        in.rs2 = s2_fp ? fpReg(5) : 5;
    }
    if (info.isLoad || info.isStore) {
        in.imm = 16;
    } else if (info.isCondBranch || op == Opcode::J || op == Opcode::JAL) {
        in.imm = static_cast<std::int64_t>(defaultCodeBase); // "main"
    } else if (op == Opcode::LUI) {
        in.imm = 1234;
    } else if (op == Opcode::FLI) {
        in.imm = static_cast<std::int64_t>(exec::fromF(2.5));
    } else if (info.readsSrc1 && !info.readsSrc2 &&
               info.opClass == OpClass::IntAlu && op != Opcode::NOP) {
        in.imm = 42; // addi-family immediate
    }

    std::string text = "main:\n    " + in.toString() + "\n    halt\n";
    Program p = assemble(text);
    const Instruction &out = p.code[0];
    EXPECT_EQ(out.op, in.op) << text;
    EXPECT_EQ(out.rd, in.rd) << text;
    EXPECT_EQ(out.rs1, in.rs1) << text;
    EXPECT_EQ(out.rs2, in.rs2) << text;
    EXPECT_EQ(out.imm, in.imm) << text;
}

namespace
{
std::vector<int>
roundTrippableOpcodes()
{
    // FLI prints its immediate as a raw integer, and mv/li/la pseudo
    // forms alias others; exclude the few opcodes whose disassembly is
    // not canonical assembler input.
    std::vector<int> ops;
    for (int o = 0; o < static_cast<int>(Opcode::NumOpcodes); ++o) {
        auto op = static_cast<Opcode>(o);
        if (op == Opcode::FLI || op == Opcode::NOP)
            continue;
        ops.push_back(o);
    }
    return ops;
}
} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, DisasmRoundTrip,
    ::testing::ValuesIn(roundTrippableOpcodes()),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(
            instInfo(static_cast<Opcode>(info.param)).mnemonic);
    });
