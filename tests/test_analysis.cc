/**
 * @file
 * Unit tests for the mmt-analyze passes: CFG construction, dataflow
 * (use-before-def, dead defs, dead code), the sharing-potential
 * abstract interpretation, and the lint rules with their allow()
 * suppressions.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.hh"
#include "analysis/hints.hh"
#include "iasm/assembler.hh"

using namespace mmt;
using namespace mmt::analysis;

namespace
{

/** Keeps the Program alive next to the analysis that references it. */
struct Analyzed
{
    Program prog;
    AnalysisResult res;
};

Analyzed
analyze(const std::string &src, bool multi_execution = false)
{
    Analyzed a{assemble(src), {}};
    AnalysisOptions opt;
    opt.multiExecution = multi_execution;
    a.res = analyzeProgram(a.prog, opt);
    return a;
}

bool
hasRule(const AnalysisResult &res, const std::string &rule)
{
    for (const Diagnostic &d : res.diags)
        if (d.rule == rule)
            return true;
    return false;
}

int
lineOfRule(const AnalysisResult &res, const std::string &rule)
{
    for (const Diagnostic &d : res.diags)
        if (d.rule == rule)
            return d.line;
    return -1;
}

} // namespace

TEST(Cfg, SplitsBlocksAtBranchesAndTargets)
{
    Program p = assemble(R"(
main:
    li r1, 4
    beqz r1, out
    addi r1, r1, -1
out:
    halt
)");
    Cfg cfg(p);
    // Blocks: [li,beqz] [addi] [halt]
    ASSERT_EQ(cfg.blocks().size(), 3u);
    EXPECT_EQ(cfg.blocks()[0].succs.size(), 2u);
    EXPECT_EQ(cfg.blocks()[1].succs.size(), 1u);
    EXPECT_TRUE(cfg.blocks()[2].succs.empty());
    for (const BasicBlock &b : cfg.blocks())
        EXPECT_TRUE(b.reachable);
    EXPECT_EQ(cfg.blockOf(0), 0);
    EXPECT_EQ(cfg.blockOf(2), 1);
    EXPECT_EQ(cfg.blockOf(3), 2);
}

TEST(Cfg, PostDominance)
{
    Program p = assemble(R"(
main:
    beqz tid, a
    nop
a:
    nop
    halt
)");
    Cfg cfg(p);
    int branch = cfg.blockOf(0);
    int join = cfg.blockOf(2);
    EXPECT_TRUE(cfg.postDominates(join, branch));
    EXPECT_FALSE(cfg.postDominates(cfg.blockOf(1), branch));
    EXPECT_TRUE(cfg.postDominates(cfg.exitNode(), branch));
}

TEST(Cfg, IndirectJumpGetsReturnPointSuccessors)
{
    Program p = assemble(R"(
main:
    call fn
    halt
fn:
    ret
)");
    Cfg cfg(p);
    const BasicBlock &fn = cfg.blocks()[(std::size_t)cfg.blockOf(2)];
    EXPECT_TRUE(fn.hasIndirect);
    // ret's conservative successors include the return point (inst 1).
    bool has_return_point = false;
    for (int s : fn.succs)
        has_return_point |= cfg.blocks()[(std::size_t)s].first == 1;
    EXPECT_TRUE(has_return_point);
    EXPECT_TRUE(cfg.reachable(1));
}

TEST(Cfg, ReturnMatchingGivesExactSuccessors)
{
    // Two callees, one call site each: under call-site-aware matching
    // every ret has exactly the successor of its own call site, not
    // the union of all return points.
    Program p = assemble(R"(
main:
    call f1
    out  r0
    call f2
    halt
f1:
    ret
f2:
    ret
)");
    Cfg cfg(p);
    const BasicBlock &f1ret = cfg.blocks()[(std::size_t)cfg.blockOf(4)];
    const BasicBlock &f2ret = cfg.blocks()[(std::size_t)cfg.blockOf(5)];
    EXPECT_TRUE(f1ret.hasIndirect);
    EXPECT_TRUE(f1ret.indirectMatched);
    ASSERT_EQ(f1ret.succs.size(), 1u); // conservative set would be 2
    EXPECT_EQ(f1ret.succs[0], cfg.blockOf(1));
    EXPECT_TRUE(f2ret.indirectMatched);
    ASSERT_EQ(f2ret.succs.size(), 1u);
    EXPECT_EQ(f2ret.succs[0], cfg.blockOf(3));
    // With the all-return-points approximation, f1's ret could bypass
    // the "out" block straight to halt; matching restores the fact
    // that the out block is on every path.
    EXPECT_TRUE(cfg.postDominates(cfg.blockOf(1), cfg.blockOf(0)));
}

TEST(Cfg, LinkRegisterDisciplineDemotesMatching)
{
    // A computed address written to ra (not a call, not a stack
    // restore) invalidates the call/return bracketing assumption:
    // every ret falls back to the conservative successor set.
    Program p = assemble(R"(
main:
    call fn
    halt
fn:
    mv  ra, tid
    ret
)");
    Cfg cfg(p);
    const BasicBlock &ret = cfg.blocks()[(std::size_t)cfg.blockOf(3)];
    EXPECT_TRUE(ret.hasIndirect);
    EXPECT_FALSE(ret.indirectMatched);
}

TEST(Cfg, EntryFrameRetKeepsFallback)
{
    // A ret reachable without any call returns to the external caller
    // (the seed ra), which matching cannot resolve.
    Program p = assemble(R"(
main:
    nop
    ret
)");
    Cfg cfg(p);
    const BasicBlock &ret = cfg.blocks()[(std::size_t)cfg.blockOf(1)];
    EXPECT_TRUE(ret.hasIndirect);
    EXPECT_FALSE(ret.indirectMatched);
}

TEST(Dataflow, FlagsUseBeforeDef)
{
    auto a = analyze("main:\n  add r1, r2, r3\n  halt\n");
    EXPECT_TRUE(hasRule(a.res, "use-before-def"));
    EXPECT_EQ(lineOfRule(a.res, "use-before-def"), 2);
}

TEST(Dataflow, HardwareRegistersAreInitialized)
{
    auto a = analyze("main:\n  add r1, tid, sp\n  st r1, 0(sp)\n  halt\n");
    EXPECT_FALSE(hasRule(a.res, "use-before-def"));
}

TEST(Dataflow, MustDefinednessJoinsOverPaths)
{
    // r1 is defined on only one branch arm: a later use is flagged.
    auto a = analyze(R"(
main:
    beqz tid, skip
    li r1, 5
skip:
    add r2, r1, r1
    halt
)");
    EXPECT_TRUE(hasRule(a.res, "use-before-def"));
    // Defined on both arms: clean.
    auto b = analyze(R"(
main:
    beqz tid, other
    li r1, 5
    j merge
other:
    li r1, 9
merge:
    add r2, r1, r1
    halt
)");
    EXPECT_FALSE(hasRule(b.res, "use-before-def"));
}

TEST(Dataflow, FlagsDeadDef)
{
    auto a = analyze(R"(
main:
    li r1, 1
    li r1, 2
    out r1
    halt
)");
    EXPECT_TRUE(hasRule(a.res, "dead-def"));
    EXPECT_EQ(lineOfRule(a.res, "dead-def"), 3);
}

TEST(Dataflow, FinalRegisterStateIsLive)
{
    // The golden model compares final registers, so a def that
    // survives to halt is NOT dead.
    auto a = analyze("main:\n  li r1, 1\n  halt\n");
    EXPECT_FALSE(hasRule(a.res, "dead-def"));
}

TEST(Lint, FlagsDeadCode)
{
    auto a = analyze(R"(
main:
    halt
    nop
)");
    EXPECT_TRUE(hasRule(a.res, "dead-code"));
    EXPECT_EQ(lineOfRule(a.res, "dead-code"), 4);
}

TEST(Lint, FlagsWriteToZeroRegister)
{
    auto a = analyze("main:\n  add r0, tid, tid\n  halt\n");
    EXPECT_TRUE(hasRule(a.res, "write-zero"));
}

TEST(Lint, FlagsInvalidBranchTarget)
{
    auto a = analyze("main:\n  j 0x9000\n  halt\n");
    EXPECT_TRUE(hasRule(a.res, "invalid-branch-target"));
    EXPECT_EQ(a.res.errors(), 1);
}

TEST(Lint, FlagsFallOffEnd)
{
    auto a = analyze("main:\n  nop\n");
    EXPECT_TRUE(hasRule(a.res, "fall-off-end"));
    EXPECT_GE(a.res.errors(), 1);
    auto b = analyze("main:\n  nop\n  halt\n");
    EXPECT_FALSE(hasRule(b.res, "fall-off-end"));
}

TEST(Lint, FlagsOutOfSegmentConstAccess)
{
    auto a = analyze(R"(
.data
x: .word 7
.text
main:
    ld r1, 0x900000(r0)
    halt
)");
    EXPECT_TRUE(hasRule(a.res, "segment-bounds"));
    // Symbol-based access into the data segment is fine.
    auto b = analyze(R"(
.data
x: .word 7
.text
main:
    ld r1, x(r0)
    st r1, x(r0)
    halt
)");
    EXPECT_FALSE(hasRule(b.res, "segment-bounds"));
    // Stack accesses through sp are fine too.
    auto c = analyze(R"(
main:
    addi sp, sp, -8
    st tid, 0(sp)
    halt
)");
    EXPECT_FALSE(hasRule(c.res, "segment-bounds"));
}

TEST(Lint, FlagsBarrierUnderDivergentBranch)
{
    auto a = analyze(R"(
main:
    bnez tid, skip
    barrier
skip:
    halt
)");
    EXPECT_TRUE(hasRule(a.res, "barrier-divergence"));
    EXPECT_TRUE(hasRule(a.res, "tid-divergent-branch"));
    // A barrier every thread reaches is clean.
    auto b = analyze(R"(
main:
    bnez tid, skip
    nop
skip:
    barrier
    halt
)");
    EXPECT_FALSE(hasRule(b.res, "barrier-divergence"));
}

TEST(Lint, AllowCommentSuppressesRule)
{
    auto a = analyze(
        "main:\n  add r0, tid, tid ; analyze:allow(write-zero)\n  halt\n");
    EXPECT_FALSE(hasRule(a.res, "write-zero"));
    // Only the named rule is suppressed.
    auto b = analyze(
        "main:\n  add r0, r9, r9 ; analyze:allow(write-zero)\n  halt\n");
    EXPECT_TRUE(hasRule(b.res, "use-before-def"));
}

TEST(Sharing, TidSeedsDivergence)
{
    auto a = analyze(R"(
main:
    mv r1, tid
    slli r2, r1, 3
    li r3, 100
    halt
)");
    const auto &cls = a.res.sharing.shareClass;
    EXPECT_EQ(cls[0], ShareClass::Divergent); // reads tid
    EXPECT_EQ(cls[1], ShareClass::Divergent); // r1 = {0,1,2,3}
    EXPECT_EQ(cls[2], ShareClass::MergeableProven); // pure immediate
}

TEST(Sharing, MultiExecutionTidIsUniform)
{
    auto a = analyze("main:\n  mv r1, tid\n  halt\n",
                     /*multi_execution=*/true);
    EXPECT_EQ(a.res.sharing.shareClass[0], ShareClass::MergeableProven);
    EXPECT_DOUBLE_EQ(a.res.staticMergeableFrac(), 1.0);
}

TEST(Sharing, LoadsDegradeToUnknown)
{
    auto a = analyze(R"(
.data
x: .word 3
.text
main:
    ld r1, x(r0)
    add r2, r1, r1
    halt
)");
    const auto &cls = a.res.sharing.shareClass;
    // The load itself has a proven-uniform address: mergeable.
    EXPECT_EQ(cls[0], ShareClass::MergeableProven);
    // Its MT-shared result is uniform only under the shared-load
    // heuristic, which taints the consumer.
    EXPECT_EQ(cls[1], ShareClass::MergeableHeuristic);

    // In an ME run the same data differs per instance.
    auto b = analyze(
        ".data\nx: .word 3\n.text\nmain:\n  ld r1, x(r0)\n"
        "  add r2, r1, r1\n  halt\n",
        /*multi_execution=*/true);
    EXPECT_EQ(b.res.sharing.shareClass[1], ShareClass::Unclassified);
}

TEST(Sharing, JoinOfDivergentPathsDegrades)
{
    // r1 ends as 5 on one path and tid-dependent on the other; the
    // consumer after the join must not be classified Divergent (thread
    // 0 may hold 5 on either path — pairwise inequality is not
    // provable), and must not be Mergeable either.
    auto a = analyze(R"(
main:
    beqz tid, a
    mv r1, tid
    j b
a:
    li r1, 5
b:
    add r2, r1, r1
    halt
)");
    int consumer = 4; // add r2, r1, r1
    EXPECT_EQ(a.res.sharing.shareClass[(std::size_t)consumer],
              ShareClass::Unclassified);
}

TEST(Sharing, SpIsDivergentInMtRuns)
{
    auto a = analyze("main:\n  st tid, 0(sp)\n  halt\n");
    // The store reads both sp (divergent address) and tid.
    EXPECT_EQ(a.res.sharing.shareClass[0], ShareClass::Divergent);
    auto b = analyze("main:\n  st r0, 0(sp)\n  halt\n",
                     /*multi_execution=*/true);
    EXPECT_EQ(b.res.sharing.shareClass[0], ShareClass::MergeableProven);
}

TEST(Sharing, LoopJoinWidensStridedStreamsToAffine)
{
    // A strided address stream: r1 starts as tid*8 and advances by a
    // uniform 32 per iteration. The loop-head join of the entry vector
    // {0,8,16,24} and its advanced copies used to collapse to Unknown;
    // the widening join keeps the common per-thread stride.
    auto a = analyze(R"(
main:
    slli r1, tid, 3
    li   r2, 4
loop:
    st   r2, 0(r1)
    addi r1, r1, 32
    addi r2, r2, -1
    bnez r2, loop
    halt
)");
    const AbsVal &base = a.res.sharing.memBase[2]; // st through r1
    EXPECT_EQ(base.kind, AbsVal::Kind::Affine);
    EXPECT_EQ(base.stride, static_cast<RegVal>(8));
    EXPECT_FALSE(base.heuristic);
    // The loop counter widens to Affine{stride 0} — proven uniform, so
    // its consumers stay MergeableProven across the join instead of
    // degrading to Unclassified.
    EXPECT_EQ(a.res.sharing.shareClass[4], ShareClass::MergeableProven);
    EXPECT_EQ(a.res.sharing.shareClass[5], ShareClass::MergeableProven);
}

TEST(Sharing, AffineStrideZeroIsProvenUniform)
{
    AbsVal uniform = AbsVal::affine(/*stride=*/0, /*heuristic=*/false);
    EXPECT_TRUE(uniform.uniformish());
    EXPECT_TRUE(uniform.provenUniform());
    // The shared-load taint keeps the value mergeable but demotes the
    // claim to heuristic.
    AbsVal guessed = AbsVal::affine(/*stride=*/0, /*heuristic=*/true);
    EXPECT_TRUE(guessed.uniformish());
    EXPECT_FALSE(guessed.provenUniform());
    // A nonzero stride is a same-path relational fact, not uniformity.
    AbsVal strided = AbsVal::affine(/*stride=*/8, /*heuristic=*/false);
    EXPECT_FALSE(strided.uniformish());
}

TEST(Sharing, ClassOfMapsPcs)
{
    auto a = analyze("main:\n  mv r1, tid\n  halt\n");
    EXPECT_EQ(a.res.classOf(a.prog.codeBase), ShareClass::Divergent);
    EXPECT_EQ(a.res.classOf(a.prog.codeBase + instBytes),
              ShareClass::MergeableProven);
    EXPECT_EQ(a.res.classOf(0x4), ShareClass::Unclassified);
}

namespace
{

bool
containsPc(const std::vector<Addr> &v, Addr pc)
{
    return std::binary_search(v.begin(), v.end(), pc);
}

FetchHints
hintsOf(const Analyzed &a)
{
    return computeFetchHints(*a.res.cfg, a.res.sharing);
}

} // namespace

TEST(FetchHints, TableDrivenReconvergence)
{
    struct Case
    {
        const char *name;
        const char *src;
        const char *branchLabel; // the tid-divergent branch
        const char *reconvLabel; // expected re-convergence point
        const char *armLabel;    // an instruction inside a hammock arm
    };
    const Case cases[] = {
        {"if-else-rejoin",
         R"(
main:
    bnez tid, odd
even:
    addi r1, r1, 1
    j    join
odd:
    addi r1, r1, 2
join:
    out  r1
    halt
)",
         "main", "join", "even"},
        {"loop-exit",
         R"(
main:
    li   r1, 0
body:
    addi r1, r1, 1
br:
    bnez tid, body
done:
    out  r1
    halt
)",
         "br", "done", "body"},
        {"guard-to-end",
         R"(
main:
    bnez tid, work_end
work:
    addi r1, r1, 1
work_end:
    barrier
    halt
)",
         "main", "work_end", "work"},
    };
    for (const Case &c : cases) {
        auto a = analyze(c.src);
        FetchHints h = hintsOf(a);
        Addr branch = a.prog.symbol(c.branchLabel);
        Addr reconv = a.prog.symbol(c.reconvLabel);
        Addr arm = a.prog.symbol(c.armLabel);
        EXPECT_TRUE(containsPc(h.tidDivergentBranchPcs, branch)) << c.name;
        EXPECT_TRUE(containsPc(h.reconvergencePcs, reconv)) << c.name;
        EXPECT_TRUE(containsPc(h.divergentPcs, arm)) << c.name;
        // The branch itself and the re-convergence point stay out of the
        // divergent set: merging at either is still profitable.
        EXPECT_FALSE(containsPc(h.divergentPcs, branch)) << c.name;
        EXPECT_FALSE(containsPc(h.divergentPcs, reconv)) << c.name;
    }
}

TEST(FetchHints, ReturnMatchingRecoversReconvergenceAcrossCalls)
{
    // Both arms of a tid-divergent hammock call a helper before
    // rejoining. With the all-return-points approximation, f1's ret
    // had an edge straight past the join (to the other return points),
    // so no block post-dominated the branch short of the exit; with
    // call-site matching the hammock is tight and the join is found.
    auto a = analyze(R"(
main:
    bnez tid, odd
    call f1
    j    join
odd:
    call f2
join:
    barrier
    call g
    halt
f1:
    ret
f2:
    ret
g:
    ret
)");
    FetchHints h = hintsOf(a);
    EXPECT_TRUE(containsPc(h.tidDivergentBranchPcs, a.prog.symbol("main")));
    EXPECT_TRUE(containsPc(h.reconvergencePcs, a.prog.symbol("join")));
}

TEST(FetchHints, NoReconvergenceWhenArmsNeverRejoin)
{
    // Both arms halt: the branch's ipdom is the virtual exit, so there
    // is no code-level re-convergence point to seed.
    auto a = analyze(R"(
main:
    bnez tid, other
    halt
other:
    halt
)");
    FetchHints h = hintsOf(a);
    EXPECT_TRUE(containsPc(h.tidDivergentBranchPcs, a.prog.symbol("main")));
    EXPECT_TRUE(h.reconvergencePcs.empty());
}

TEST(FetchHints, SplitTablePredictsLaneCounts)
{
    // tid-fed instructions split into one sub-instruction per distinct
    // lane value; uniform instructions never enter the split table.
    auto a = analyze(R"(
main:
    mv   r1, tid
    addi r2, r1, 4
    li   r3, 7
    halt
)");
    FetchHints h = hintsOf(a);
    ASSERT_EQ(h.splitPcs.size(), h.splitCounts.size());
    Addr base = a.prog.codeBase;
    EXPECT_TRUE(containsPc(h.splitPcs, base));             // mv r1, tid
    EXPECT_TRUE(containsPc(h.splitPcs, base + instBytes)); // addi off tid
    EXPECT_FALSE(containsPc(h.splitPcs, base + 2 * instBytes)); // li
    for (std::size_t i = 0; i < h.splitPcs.size(); ++i)
        EXPECT_GT(h.splitCounts[i], 1) << "pc " << h.splitPcs[i];
}

TEST(FetchHints, UniformProgramHasEmptySplitTable)
{
    auto a = analyze("main:\n  li r1, 3\n  addi r2, r1, 1\n  halt\n");
    FetchHints h = hintsOf(a);
    EXPECT_TRUE(h.splitPcs.empty());
    EXPECT_TRUE(h.splitCounts.empty());
}

TEST(FetchHints, UniformBranchesYieldNoHints)
{
    // No tid dependence anywhere: every hint vector stays empty.
    auto a = analyze(R"(
main:
    li   r1, 4
    beqz r1, skip
    addi r1, r1, 1
skip:
    halt
)");
    FetchHints h = hintsOf(a);
    EXPECT_TRUE(h.tidDivergentBranchPcs.empty());
    EXPECT_TRUE(h.reconvergencePcs.empty());
    EXPECT_TRUE(h.divergentPcs.empty());
}

TEST(FetchHints, AllWorkloadsProduceWellFormedHints)
{
    auto sorted_unique = [](const std::vector<Addr> &v) {
        return std::is_sorted(v.begin(), v.end()) &&
               std::adjacent_find(v.begin(), v.end()) == v.end();
    };
    for (const Workload &w : allWorkloads()) {
        AnalysisResult res = analyzeWorkload(w);
        FetchHints h = computeFetchHints(*res.cfg, res.sharing);
        EXPECT_TRUE(sorted_unique(h.divergentPcs)) << w.name;
        EXPECT_TRUE(sorted_unique(h.tidDivergentBranchPcs)) << w.name;
        EXPECT_TRUE(sorted_unique(h.reconvergencePcs)) << w.name;
        EXPECT_TRUE(sorted_unique(h.splitPcs)) << w.name;
        ASSERT_EQ(h.splitPcs.size(), h.splitCounts.size()) << w.name;
        for (std::uint8_t c : h.splitCounts)
            EXPECT_GT(c, 1) << w.name;
        const Program &prog = *res.program;
        Addr lo = prog.codeBase;
        Addr hi = prog.codeBase +
                  static_cast<Addr>(prog.code.size()) * instBytes;
        auto in_code = [&](const std::vector<Addr> &v) {
            for (Addr pc : v) {
                if (pc < lo || pc >= hi)
                    return false;
            }
            return true;
        };
        EXPECT_TRUE(in_code(h.divergentPcs)) << w.name;
        EXPECT_TRUE(in_code(h.tidDivergentBranchPcs)) << w.name;
        EXPECT_TRUE(in_code(h.reconvergencePcs)) << w.name;
        EXPECT_TRUE(in_code(h.splitPcs)) << w.name;
        for (Addr pc : h.tidDivergentBranchPcs)
            EXPECT_FALSE(containsPc(h.divergentPcs, pc)) << w.name;
        for (Addr pc : h.reconvergencePcs)
            EXPECT_FALSE(containsPc(h.divergentPcs, pc)) << w.name;
    }
}

TEST(Report, TextAndJsonRender)
{
    auto a = analyze("main:\n  add r0, tid, tid\n  halt\n");
    std::string text = renderReport(a.res, "demo", false);
    EXPECT_NE(text.find("write-zero"), std::string::npos);
    EXPECT_NE(text.find("[warning]"), std::string::npos);
    std::string json = renderReport(a.res, "demo", true);
    EXPECT_NE(json.find("\"workload\": \"demo\""), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"write-zero\""), std::string::npos);
    EXPECT_NE(json.find("\"static_mergeable_frac\""), std::string::npos);
    // The schema is versioned so the CI lint gate can detect drift,
    // and the mergeable count is split by proof strength.
    EXPECT_NE(json.find("\"schema_version\": " +
                        std::to_string(kAnalyzeSchemaVersion)),
              std::string::npos);
    EXPECT_NE(json.find("\"mergeable_proven\""), std::string::npos);
    EXPECT_NE(json.find("\"mergeable_heuristic\""), std::string::npos);
    EXPECT_EQ(json.find("\"mergeable\":"), std::string::npos);
}
