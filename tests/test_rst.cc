/**
 * @file
 * Register Sharing Table tests (paper §4.2.1, §4.2.3): pair-bit
 * semantics, destination updates under splitting, divergent-path
 * clearing, and register-merge provenance.
 */

#include <gtest/gtest.h>

#include "core/mmt/rst.hh"

using namespace mmt;

TEST(Rst, StartsAllShared)
{
    RegisterSharingTable rst;
    for (RegIndex r = 0; r < numArchRegs; ++r) {
        for (ThreadId a = 0; a < maxThreads; ++a) {
            for (ThreadId b = 0; b < maxThreads; ++b)
                EXPECT_TRUE(rst.shared(r, a, b));
        }
    }
}

TEST(Rst, SelfAndUnusedRegistersAlwaysShared)
{
    RegisterSharingTable rst;
    rst.clearThread(5, 0);
    EXPECT_TRUE(rst.shared(5, 0, 0));  // a thread shares with itself
    EXPECT_TRUE(rst.shared(-1, 0, 1)); // unused operand
}

TEST(Rst, ClearThreadDropsAllPairsOfThatThread)
{
    RegisterSharingTable rst;
    rst.clearThread(7, 1);
    EXPECT_FALSE(rst.shared(7, 0, 1));
    EXPECT_FALSE(rst.shared(7, 1, 2));
    EXPECT_FALSE(rst.shared(7, 1, 3));
    EXPECT_TRUE(rst.shared(7, 0, 2)); // pairs not involving thread 1
    EXPECT_TRUE(rst.shared(7, 2, 3));
    EXPECT_TRUE(rst.shared(8, 0, 1)); // other registers untouched
}

TEST(Rst, UpdateDestMergedKeepsSharing)
{
    RegisterSharingTable rst;
    rst.clearThread(3, 0);
    // A fetch-identical instruction covering {0,1} stays one instance:
    // the destination becomes shared again for (0,1).
    rst.updateDest(3, ThreadMask(0b0011),
                   [](ThreadId, ThreadId) { return true; });
    EXPECT_TRUE(rst.shared(3, 0, 1));
    // Pairs straddling the ITID are cleared (0 or 1 vs 2/3).
    EXPECT_FALSE(rst.shared(3, 0, 2));
    EXPECT_FALSE(rst.shared(3, 1, 3));
    // Pairs entirely outside the ITID keep their old value.
    EXPECT_TRUE(rst.shared(3, 2, 3));
}

TEST(Rst, UpdateDestSplitClearsSharing)
{
    RegisterSharingTable rst;
    rst.updateDest(4, ThreadMask(0b0011),
                   [](ThreadId, ThreadId) { return false; });
    EXPECT_FALSE(rst.shared(4, 0, 1));
    EXPECT_TRUE(rst.shared(4, 2, 3));
}

TEST(Rst, UpdateDestSingletonClearsItsPairs)
{
    // Paper §4.2.6 case 1: a divergent-path (singleton) write makes the
    // destination unshared with everyone.
    RegisterSharingTable rst;
    rst.updateDest(9, ThreadMask::single(2),
                   [](ThreadId, ThreadId) { return false; });
    EXPECT_FALSE(rst.shared(9, 0, 2));
    EXPECT_FALSE(rst.shared(9, 2, 3));
    EXPECT_TRUE(rst.shared(9, 0, 1));
}

TEST(Rst, PartialSplitPartition)
{
    // ITID 1110 splits into {0,1} and {2}: (0,1) stays shared, (0,2) and
    // (1,2) are cleared.
    RegisterSharingTable rst;
    auto same = [](ThreadId a, ThreadId b) {
        return (a < 2) == (b < 2);
    };
    rst.updateDest(11, ThreadMask(0b0111), same);
    EXPECT_TRUE(rst.shared(11, 0, 1));
    EXPECT_FALSE(rst.shared(11, 0, 2));
    EXPECT_FALSE(rst.shared(11, 1, 2));
}

TEST(Rst, SharedGroupComputesLeaderClass)
{
    RegisterSharingTable rst;
    rst.clearThread(6, 3);
    ThreadMask all = ThreadMask::firstN(4);
    ThreadMask g = rst.sharedGroup(6, all);
    EXPECT_TRUE(g.contains(0));
    EXPECT_TRUE(g.contains(1));
    EXPECT_TRUE(g.contains(2));
    EXPECT_FALSE(g.contains(3));
}

TEST(Rst, GroupSharesChecksAllPairs)
{
    RegisterSharingTable rst;
    EXPECT_TRUE(rst.groupShares(2, ThreadMask(0b0111)));
    rst.clearThread(2, 1);
    EXPECT_FALSE(rst.groupShares(2, ThreadMask(0b0111)));
    EXPECT_TRUE(rst.groupShares(2, ThreadMask(0b0101)));
}

TEST(Rst, MergeProvenance)
{
    RegisterSharingTable rst;
    rst.clearThread(12, 1);
    EXPECT_FALSE(rst.setByMerge(12, 0, 1));
    rst.mergeSet(12, 0, 1);
    EXPECT_TRUE(rst.shared(12, 0, 1));
    EXPECT_TRUE(rst.setByMerge(12, 0, 1));
    // A regular rename update clears the provenance flag.
    rst.updateDest(12, ThreadMask(0b0011),
                   [](ThreadId, ThreadId) { return true; });
    EXPECT_TRUE(rst.shared(12, 0, 1));
    EXPECT_FALSE(rst.setByMerge(12, 0, 1));
}

TEST(Rst, StatsCounting)
{
    RegisterSharingTable rst;
    rst.updateDest(1, ThreadMask(0b0011),
                   [](ThreadId, ThreadId) { return true; });
    rst.mergeSet(2, 0, 1);
    EXPECT_EQ(rst.updates.value(), 1u);
    EXPECT_EQ(rst.mergeSets.value(), 1u);
}
