/**
 * @file
 * End-to-end tests of the MMT mechanisms in the pipeline: shared fetch
 * (MERGE-mode records, ITID stamping), execute merging and its stats,
 * divergence + FHB remerge, the LVIP path for ME loads (rollbacks), and
 * commit-time register merging re-enabling execute-identical work.
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "iasm/assembler.hh"

using namespace mmt;

namespace
{

struct Rig
{
    Program prog;
    std::vector<std::unique_ptr<MemoryImage>> images;
    std::unique_ptr<SmtCore> core;

    Rig(const std::string &src, const CoreParams &params,
        bool separate_spaces,
        const std::function<void(MemoryImage &, const Program &, int)>
            &init = nullptr)
    {
        prog = assemble(src);
        int spaces = separate_spaces ? params.numThreads : 1;
        std::vector<MemoryImage *> ptrs;
        for (int i = 0; i < spaces; ++i) {
            images.push_back(std::make_unique<MemoryImage>());
            images.back()->loadData(prog);
            if (init)
                init(*images.back(), prog, i);
        }
        for (int t = 0; t < params.numThreads; ++t)
            ptrs.push_back(
                images[spaces == 1 ? 0 : static_cast<std::size_t>(t)]
                    .get());
        core = std::make_unique<SmtCore>(params, &prog, ptrs);
    }
};

CoreParams
mmtParams(int threads, bool me)
{
    CoreParams p;
    p.numThreads = threads;
    p.sharedFetch = true;
    p.sharedExec = true;
    p.regMerge = true;
    p.multiExecution = me;
    return p;
}

// A straight-line ME kernel with no divergence at all.
const char *straightMe = R"(
.data
x: .word 5
.text
main:
    la  r1, x
    ld  r2, 0(r1)
    li  r3, 10
    mul r4, r2, r3
    add r5, r4, r2
    out r5
    halt
)";

} // namespace

TEST(MmtPipeline, IdenticalMeInstancesFullyMerge)
{
    Rig rig(straightMe, mmtParams(2, true), true);
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 55u);
    EXPECT_EQ(rig.core->thread(1).output[0], 55u);
    // Every record fetched once for both threads...
    EXPECT_EQ(rig.core->stats.fetchedThreadInsts.value(),
              2 * rig.core->stats.fetchRecords.value());
    // ...entirely in MERGE mode...
    EXPECT_EQ(rig.core->stats.fetchedInMode[0].value(),
              rig.core->stats.fetchedThreadInsts.value());
    // ...and executed once: instances == records.
    EXPECT_EQ(rig.core->stats.committedInstances.value(),
              rig.core->stats.fetchRecords.value());
    // Classified execute-identical.
    EXPECT_EQ(rig.core->stats
                  .identClass[static_cast<int>(IdentClass::ExecIdentical)]
                  .value(),
              rig.core->stats.committedThreadInsts.value());
    EXPECT_EQ(rig.core->stats.lvipRollbacks.value(), 0u);
}

TEST(MmtPipeline, SharedFetchOnlyStillSplitsExecution)
{
    CoreParams p = mmtParams(2, true);
    p.sharedExec = false;
    p.regMerge = false;
    Rig rig(straightMe, p, true);
    rig.core->run();
    // Fetch merged but every instruction executed per thread.
    EXPECT_EQ(rig.core->stats.fetchedThreadInsts.value(),
              2 * rig.core->stats.fetchRecords.value());
    EXPECT_EQ(rig.core->stats.committedInstances.value(),
              rig.core->stats.committedThreadInsts.value());
    EXPECT_EQ(rig.core->stats
                  .identClass[static_cast<int>(IdentClass::ExecIdentical)]
                  .value(),
              0u);
    EXPECT_EQ(rig.core->stats
                  .identClass[static_cast<int>(
                      IdentClass::FetchIdentical)]
                  .value(),
              rig.core->stats.committedThreadInsts.value());
}

TEST(MmtPipeline, BaseNeverMerges)
{
    CoreParams p;
    p.numThreads = 2;
    p.multiExecution = true;
    Rig rig(straightMe, p, true);
    rig.core->run();
    EXPECT_EQ(rig.core->stats.fetchedThreadInsts.value(),
              rig.core->stats.fetchRecords.value());
    EXPECT_EQ(rig.core->stats.fetchedInMode[0].value(), 0u);
}

TEST(MmtPipeline, MeLoadsWithDifferentValuesSplitAndRollBack)
{
    // Instances load different values from the same address: the LVIP
    // first predicts identical -> rollback + table entry; on the second
    // execution of the same PC it predicts different -> clean split.
    const char *src = R"(
.data
x: .word 0
.text
main:
    la  r1, x
    li  r4, 0
    li  r5, 2
again:
    ld  r2, 0(r1)
    add r6, r6, r2
    addi r4, r4, 1
    blt r4, r5, again
    out r6
    halt
)";
    Rig rig(src, mmtParams(2, true), true,
            [](MemoryImage &img, const Program &prog, int instance) {
                img.write64(prog.symbol("x"),
                            static_cast<RegVal>(100 + instance));
            });
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 200u);
    EXPECT_EQ(rig.core->thread(1).output[0], 202u);
    EXPECT_EQ(rig.core->stats.lvipRollbacks.value(), 1u);
    EXPECT_EQ(rig.core->lvip().mispredicts.value(), 1u);
}

TEST(MmtPipeline, MtSharedLoadsStayMerged)
{
    // MT threads loading the same shared address: one access, merged.
    const char *src = R"(
.data
nthreads: .word 1
x:        .word 33
.text
main:
    la  r1, x
    ld  r2, 0(r1)
    out r2
    barrier
    halt
)";
    CoreParams p = mmtParams(2, false);
    Rig rig(src, p, false,
            [&](MemoryImage &img, const Program &prog, int) {
                img.write64(prog.symbol("nthreads"), 2);
            });
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 33u);
    EXPECT_EQ(rig.core->thread(1).output[0], 33u);
    EXPECT_EQ(rig.core->stats.lvipRollbacks.value(), 0u);
    // The shared load is one instance, one cache access.
    EXPECT_EQ(rig.core->stats.loads.value(), 1u);
}

TEST(MmtPipeline, DivergenceAndFhbRemerge)
{
    // tid-dependent paths of different lengths through taken branches,
    // rejoining at a common loop head afterwards.
    const char *src = R"(
.data
nthreads: .word 1
.text
main:
    li   r5, 0
    li   r6, 8
loop:
    bnez tid, odd
    addi r5, r5, 1
    j    join
odd:
    addi r5, r5, 2
    j    join
join:
    addi r6, r6, -1
    bnez r6, loop
    out  r5
    barrier
    halt
)";
    CoreParams p = mmtParams(2, false);
    Rig rig(src, p, false,
            [&](MemoryImage &img, const Program &prog, int) {
                img.write64(prog.symbol("nthreads"), 2);
            });
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 8u);
    EXPECT_EQ(rig.core->thread(1).output[0], 16u);
    EXPECT_GE(rig.core->fetchSync().divergences.value(), 6u);
    EXPECT_GE(rig.core->fetchSync().remerges.value(), 6u);
    // Both DETECT/CATCHUP and MERGE instructions were fetched.
    EXPECT_GT(rig.core->stats.fetchedInMode[0].value(), 0u);
    EXPECT_GT(rig.core->stats.fetchedInMode[1].value() +
                  rig.core->stats.fetchedInMode[2].value(),
              0u);
}

TEST(MmtPipeline, RegisterMergingRestoresSharing)
{
    // Threads write the SAME value to r5 on divergent paths; with
    // register merging the subsequent long stretch of r5-consumers can
    // execute merged again (paper §4.2.7).
    const char *src = R"(
.data
nthreads: .word 1
.text
main:
    bnez tid, other
    li   r5, 7
    j    join
other:
    li   r5, 7
join:
    li   r7, 0
    li   r8, 40
consume:
    add  r7, r7, r5
    addi r8, r8, -1
    bnez r8, consume
    out  r7
    barrier
    halt
)";
    CoreParams with = mmtParams(2, false);
    CoreParams without = with;
    without.regMerge = false;

    auto run = [&](const CoreParams &p) {
        Rig rig(src, p, false,
                [&](MemoryImage &img, const Program &prog, int) {
                    img.write64(prog.symbol("nthreads"), 2);
                });
        rig.core->run();
        EXPECT_EQ(rig.core->thread(0).output[0], 280u);
        EXPECT_EQ(rig.core->thread(1).output[0], 280u);
        return rig.core->stats
            .identClass[static_cast<int>(
                IdentClass::ExecIdenticalRegMerge)]
            .value();
    };
    EXPECT_GT(run(with), 0u);
    EXPECT_EQ(run(without), 0u);
}

TEST(MmtPipeline, FourThreadPartialSplit)
{
    // tid 0/1 share one path, 2/3 the other: pairwise merge groups.
    const char *src = R"(
.data
nthreads: .word 1
.text
main:
    slti r1, tid, 2
    beqz r1, high
    li   r5, 1
    j    join
high:
    li   r5, 2
join:
    out  r5
    barrier
    halt
)";
    CoreParams p = mmtParams(4, false);
    Rig rig(src, p, false,
            [&](MemoryImage &img, const Program &prog, int) {
                img.write64(prog.symbol("nthreads"), 4);
            });
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 1u);
    EXPECT_EQ(rig.core->thread(1).output[0], 1u);
    EXPECT_EQ(rig.core->thread(2).output[0], 2u);
    EXPECT_EQ(rig.core->thread(3).output[0], 2u);
    EXPECT_GE(rig.core->fetchSync().divergences.value(), 1u);
}

TEST(MmtPipeline, InvariantCheckingRunsClean)
{
    // checkInvariants is on by default in these params; a full run of a
    // mixed program exercising splits, merges and memory must not trip
    // any soundness assertion (it would abort the test).
    const char *src = R"(
.data
x: .word 3
v: .space 256
.text
main:
    la   r1, x
    ld   r2, 0(r1)
    la   r3, v
    li   r4, 0
fill:
    slli r5, r4, 3
    add  r5, r3, r5
    mul  r6, r4, r2
    st   r6, 0(r5)
    addi r4, r4, 1
    slti r7, r4, 32
    bnez r7, fill
    li   r4, 0
    li   r8, 0
sum:
    slli r5, r4, 3
    add  r5, r3, r5
    ld   r6, 0(r5)
    add  r8, r8, r6
    addi r4, r4, 1
    slti r7, r4, 32
    bnez r7, sum
    out  r8
    halt
)";
    Rig rig(src, mmtParams(2, true), true,
            [](MemoryImage &img, const Program &prog, int instance) {
                img.write64(prog.symbol("x"),
                            static_cast<RegVal>(3 + instance));
            });
    rig.core->run();
    EXPECT_EQ(rig.core->thread(0).output[0], 496u * 3 / 3 * 3);
    EXPECT_EQ(rig.core->thread(1).output[0], 496u * 4 / 4 * 4);
}
