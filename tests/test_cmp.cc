/**
 * @file
 * CMP layer tests: context placement shapes, the packed-topology
 * cycle-identity invariant, message passing and MT barriers across
 * cores, shared-L2/shared-I-cache behaviour, the placement scenario
 * registry, and the per-core RunResult plumbing through the result
 * store.
 */

#include <gtest/gtest.h>

#include "core/mmt/fetch_sync.hh"
#include "runner/result_store.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

using namespace mmt;

namespace
{

SimOverrides
topo(int cores, Placement placement, bool shared_icache = false)
{
    SimOverrides ov;
    ov.numCores = cores;
    ov.placement = placement;
    ov.sharedICache = shared_icache;
    return ov;
}

RunResult
run(const std::string &app, int threads, const SimOverrides &ov,
    bool check_golden = true)
{
    const Workload &w = app == "mp-ring" ? messagePassingWorkload()
                                         : findWorkload(app);
    return runWorkload(w, ConfigKind::MMT_FXR, threads, ov, check_golden);
}

} // namespace

TEST(PlaceContexts, PackedFillsCoreZeroFirst)
{
    // With <= maxThreads contexts, Packed reproduces today's
    // single-core layout no matter how many cores exist.
    auto one = placeContexts(4, 1, Placement::Packed);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], (std::vector<int>{0, 1, 2, 3}));

    auto four = placeContexts(4, 4, Placement::Packed);
    ASSERT_EQ(four.size(), 1u); // idle cores are dropped
    EXPECT_EQ(four[0], (std::vector<int>{0, 1, 2, 3}));
}

TEST(PlaceContexts, SpreadDealsRoundRobin)
{
    auto two = placeContexts(4, 2, Placement::Spread);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], (std::vector<int>{0, 2}));
    EXPECT_EQ(two[1], (std::vector<int>{1, 3}));

    auto partial = placeContexts(3, 4, Placement::Spread);
    ASSERT_EQ(partial.size(), 3u);
    for (int c = 0; c < 3; ++c)
        EXPECT_EQ(partial[static_cast<std::size_t>(c)],
                  std::vector<int>{c});
}

TEST(Cmp, PackedTopologyIsCycleIdentical)
{
    // The load-bearing invariant: adding cores without moving contexts
    // must not change a single number.
    RunResult base = run("equake", 4, SimOverrides());
    for (const SimOverrides &ov :
         {topo(1, Placement::Spread), topo(2, Placement::Packed),
          topo(4, Placement::Packed)}) {
        RunResult r = run("equake", 4, ov);
        EXPECT_TRUE(r.goldenOk);
        EXPECT_EQ(r.cycles, base.cycles);
        EXPECT_EQ(r.committedThreadInsts, base.committedThreadInsts);
        EXPECT_EQ(r.fetchRecords, base.fetchRecords);
        EXPECT_DOUBLE_EQ(r.energy.total(), base.energy.total());
    }
}

TEST(Cmp, MessagePassingSpansCores)
{
    // SEND/RECV ranks are global context ids: the ring all-reduce must
    // produce golden results with one rank per core.
    RunResult r = run("mp-ring", 4, topo(4, Placement::Spread));
    EXPECT_TRUE(r.goldenOk);
    ASSERT_EQ(r.perCore.size(), 4u);
    for (const CoreBreakdown &cb : r.perCore)
        EXPECT_EQ(cb.contexts.size(), 1u);
}

TEST(Cmp, MeSpreadMatchesPackedArchitecturally)
{
    RunResult packed = run("equake", 4, topo(4, Placement::Packed));
    RunResult spread = run("equake", 4, topo(4, Placement::Spread));
    EXPECT_TRUE(packed.goldenOk);
    EXPECT_TRUE(spread.goldenOk);
    // Same architected work either way; merging only exists intra-core,
    // so singleton cores report none.
    EXPECT_EQ(packed.committedThreadInsts, spread.committedThreadInsts);
    ASSERT_EQ(spread.perCore.size(), 4u);
    for (const CoreBreakdown &cb : spread.perCore)
        EXPECT_DOUBLE_EQ(cb.mergedFrac, 0.0);
    EXPECT_EQ(packed.perCore.size(), 1u);
}

TEST(Cmp, MtBarrierAndSharedL2AcrossCores)
{
    // lu shares one address space and synchronizes with BARRIER; the
    // golden comparison checks the final memory image, so a pass means
    // the global barrier and the shared L2 kept the cores coherent.
    RunResult r = run("lu", 4, topo(2, Placement::Spread));
    EXPECT_TRUE(r.goldenOk);
    EXPECT_GT(r.sharedL2Accesses, 0u);
    ASSERT_EQ(r.perCore.size(), 2u);
    EXPECT_EQ(r.perCore[0].contexts, (std::vector<int>{0, 2}));
    EXPECT_EQ(r.perCore[1].contexts, (std::vector<int>{1, 3}));
}

TEST(Cmp, SharedICacheObservesHits)
{
    RunResult off = run("lu", 4, topo(4, Placement::Spread, false));
    RunResult on = run("lu", 4, topo(4, Placement::Spread, true));
    EXPECT_TRUE(on.goldenOk);
    EXPECT_EQ(off.sharedICacheAccesses, 0u);
    EXPECT_GT(on.sharedICacheAccesses, 0u);
    EXPECT_GT(on.sharedICacheHits, 0u);
    EXPECT_GE(on.sharedICacheAccesses, on.sharedICacheHits);
}

TEST(Cmp, SplitSteerChargesFireOnRealWorkloads)
{
    // The regression the retired merge-skip veto silently hid: a hint
    // whose counter never moves is dead weight. The split-steer charge
    // must fire (nonzero counter) and change timing on an MT workload
    // whose merged groups fetch statically Divergent PCs, must stay
    // inert under `off`, and `off` must remain bit-identical.
    SimOverrides ov;
    RunResult off = run("c-saxpy", 4, ov, /*check_golden=*/false);
    EXPECT_EQ(off.splitSteerCharges, 0u);
    ov.staticHints = StaticHintsMode::SplitSteer;
    RunResult steer = run("c-saxpy", 4, ov, /*check_golden=*/true);
    EXPECT_TRUE(steer.goldenOk);
    EXPECT_GT(steer.splitSteerCharges, 0u);
    EXPECT_NE(steer.cycles, off.cycles);
}

TEST(Cmp, ResultStoreRoundTripsPerCoreBreakdown)
{
    RunResult r = run("equake", 4, topo(2, Placement::Spread, true),
                      /*check_golden=*/false);
    ASSERT_EQ(r.perCore.size(), 2u);
    r.splitSteerCharges = 7; // exercise the field even without hints

    RunResult back;
    ASSERT_TRUE(deserializeResult(serializeResult(r), back));
    EXPECT_EQ(back.numCores, r.numCores);
    EXPECT_EQ(back.placement, r.placement);
    EXPECT_EQ(back.sharedICache, r.sharedICache);
    EXPECT_EQ(back.splitSteerCharges, r.splitSteerCharges);
    EXPECT_EQ(back.sharedL2Accesses, r.sharedL2Accesses);
    EXPECT_EQ(back.sharedL2Misses, r.sharedL2Misses);
    EXPECT_EQ(back.sharedICacheAccesses, r.sharedICacheAccesses);
    EXPECT_EQ(back.sharedICacheHits, r.sharedICacheHits);
    ASSERT_EQ(back.perCore.size(), r.perCore.size());
    for (std::size_t c = 0; c < r.perCore.size(); ++c) {
        EXPECT_EQ(back.perCore[c].contexts, r.perCore[c].contexts);
        EXPECT_EQ(back.perCore[c].cycles, r.perCore[c].cycles);
        EXPECT_EQ(back.perCore[c].committedThreadInsts,
                  r.perCore[c].committedThreadInsts);
        EXPECT_DOUBLE_EQ(back.perCore[c].mergedFrac,
                         r.perCore[c].mergedFrac);
        EXPECT_DOUBLE_EQ(back.perCore[c].energyPj,
                         r.perCore[c].energyPj);
        EXPECT_EQ(back.perCore[c].sharedICacheHits,
                  r.perCore[c].sharedICacheHits);
    }
}

TEST(Cmp, DeserializeRejectsBadTopology)
{
    RunResult r = run("equake", 2, topo(2, Placement::Spread),
                      /*check_golden=*/false);
    std::string text = serializeResult(r);
    std::string::size_type pos = text.find("system 2 spread");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 8, "system 9");
    RunResult back;
    EXPECT_FALSE(deserializeResult(text, back));
}

TEST(Cmp, PlacementScenarioRegistry)
{
    const std::vector<PlacementScenario> &scns = placementScenarios();
    ASSERT_GE(scns.size(), 2u);
    // The baseline entry must describe the paper's topology exactly.
    EXPECT_EQ(scns[0].numCores, 1);
    EXPECT_EQ(scns[0].placement, Placement::Packed);
    EXPECT_FALSE(scns[0].sharedICache);
    for (const PlacementScenario &s : scns) {
        EXPECT_GE(s.numCores, 1);
        EXPECT_LE(s.numCores, maxCores);
        EXPECT_FALSE(s.name.empty());
    }
    for (std::size_t i = 0; i < scns.size(); ++i)
        for (std::size_t j = i + 1; j < scns.size(); ++j)
            EXPECT_NE(scns[i].name, scns[j].name);
}
