/**
 * @file
 * Tests for the two-pass assembler: directives, label resolution (incl.
 * forward references), pseudo-instructions, operand forms, and program
 * image layout.
 */

#include <gtest/gtest.h>

#include "iasm/assembler.hh"
#include "isa/exec.hh"

using namespace mmt;

TEST(Assembler, MinimalProgram)
{
    Program p = assemble("main:\n  li r1, 42\n  halt\n");
    ASSERT_EQ(p.code.size(), 2u);
    EXPECT_EQ(p.entry, p.codeBase);
    EXPECT_EQ(p.code[0].op, Opcode::LUI);
    EXPECT_EQ(p.code[0].rd, 1);
    EXPECT_EQ(p.code[0].imm, 42);
    EXPECT_EQ(p.code[1].op, Opcode::HALT);
}

TEST(Assembler, EntryDefaultsToFirstInstructionWithoutMain)
{
    Program p = assemble("  nop\n  halt\n");
    EXPECT_EQ(p.entry, p.codeBase);
}

TEST(Assembler, ForwardLabelReference)
{
    Program p = assemble(R"(
main:
    j skip
    nop
skip:
    halt
)");
    EXPECT_EQ(p.code[0].op, Opcode::J);
    EXPECT_EQ(static_cast<Addr>(p.code[0].imm), p.codeBase + 2 * instBytes);
}

TEST(Assembler, DataDirectives)
{
    Program p = assemble(R"(
.data
a:  .word 1, 2, 3
b:  .double 1.5
c:  .space 24
d:  .word 9
.text
main:
    halt
)");
    Addr a = p.symbol("a");
    EXPECT_EQ(p.dataWords.at(a), 1u);
    EXPECT_EQ(p.dataWords.at(a + 8), 2u);
    EXPECT_EQ(p.dataWords.at(a + 16), 3u);
    EXPECT_EQ(p.symbol("b"), a + 24);
    EXPECT_EQ(exec::toF(p.dataWords.at(p.symbol("b"))), 1.5);
    EXPECT_EQ(p.symbol("c"), a + 32);
    EXPECT_EQ(p.symbol("d"), a + 32 + 24);
}

TEST(Assembler, SpaceRoundsUpToWords)
{
    Program p = assemble(R"(
.data
a: .space 3
b: .word 5
.text
main: halt
)");
    EXPECT_EQ(p.symbol("b"), p.symbol("a") + 8);
}

TEST(Assembler, MemoryOperands)
{
    Program p = assemble(R"(
.data
buf: .space 8
.text
main:
    ld  r1, 16(r2)
    st  r3, -8(r4)
    fld f1, buf(r0)
    fst f2, 0(r5)
    halt
)");
    EXPECT_EQ(p.code[0].op, Opcode::LD);
    EXPECT_EQ(p.code[0].rd, 1);
    EXPECT_EQ(p.code[0].rs1, 2);
    EXPECT_EQ(p.code[0].imm, 16);
    EXPECT_EQ(p.code[1].op, Opcode::ST);
    EXPECT_EQ(p.code[1].rs2, 3);
    EXPECT_EQ(p.code[1].rs1, 4);
    EXPECT_EQ(p.code[1].imm, -8);
    EXPECT_EQ(static_cast<Addr>(p.code[2].imm), p.symbol("buf"));
    EXPECT_EQ(p.code[2].rd, fpReg(1));
    EXPECT_EQ(p.code[3].rs2, fpReg(2));
}

TEST(Assembler, PseudoInstructions)
{
    Program p = assemble(R"(
main:
    mv   r1, r2
    la   r3, main
    beqz r4, main
    bnez r5, main
    bgt  r6, r7, main
    ble  r6, r7, main
    call main
    ret
    halt
)");
    EXPECT_EQ(p.code[0].op, Opcode::ADD);
    EXPECT_EQ(p.code[0].rs2, regZero);
    EXPECT_EQ(p.code[1].op, Opcode::LUI);
    EXPECT_EQ(static_cast<Addr>(p.code[1].imm), p.codeBase);
    EXPECT_EQ(p.code[2].op, Opcode::BEQ);
    EXPECT_EQ(p.code[2].rs2, regZero);
    EXPECT_EQ(p.code[3].op, Opcode::BNE);
    // bgt a,b -> blt b,a
    EXPECT_EQ(p.code[4].op, Opcode::BLT);
    EXPECT_EQ(p.code[4].rs1, 7);
    EXPECT_EQ(p.code[4].rs2, 6);
    EXPECT_EQ(p.code[5].op, Opcode::BGE);
    EXPECT_EQ(p.code[5].rs1, 7);
    EXPECT_EQ(p.code[6].op, Opcode::JAL);
    EXPECT_EQ(p.code[6].rd, regRa);
    EXPECT_EQ(p.code[7].op, Opcode::JR);
    EXPECT_EQ(p.code[7].rs1, regRa);
}

TEST(Assembler, RegisterAliases)
{
    Program p = assemble(R"(
main:
    mv r1, tid
    mv r2, sp
    mv r3, zero
    mv r4, ra
    halt
)");
    EXPECT_EQ(p.code[0].rs1, regTid);
    EXPECT_EQ(p.code[1].rs1, regSp);
    EXPECT_EQ(p.code[2].rs1, regZero);
    EXPECT_EQ(p.code[3].rs1, regRa);
}

TEST(Assembler, FloatImmediates)
{
    Program p = assemble("main:\n  fli f1, 3.25\n  fli f2, -0.5\n  halt\n");
    EXPECT_EQ(exec::toF(static_cast<RegVal>(p.code[0].imm)), 3.25);
    EXPECT_EQ(exec::toF(static_cast<RegVal>(p.code[1].imm)), -0.5);
}

TEST(Assembler, HexAndNegativeImmediates)
{
    Program p = assemble("main:\n  li r1, 0x1f\n  addi r2, r1, -5\n  halt\n");
    EXPECT_EQ(p.code[0].imm, 0x1f);
    EXPECT_EQ(p.code[1].imm, -5);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble(R"(
# full-line comment
main:            ; trailing comment style 2
    nop          # trailing comment

    halt
)");
    EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, MultipleLabelsOneAddress)
{
    Program p = assemble("a: b: main:\n  halt\n");
    EXPECT_EQ(p.symbol("a"), p.symbol("b"));
    EXPECT_EQ(p.symbol("a"), p.symbol("main"));
}

TEST(Assembler, ProgramFetchAndValidity)
{
    Program p = assemble("main:\n  nop\n  halt\n");
    EXPECT_TRUE(p.validPc(p.codeBase));
    EXPECT_TRUE(p.validPc(p.codeBase + 4));
    EXPECT_FALSE(p.validPc(p.codeBase + 8));   // past the end
    EXPECT_FALSE(p.validPc(p.codeBase + 2));   // misaligned
    EXPECT_EQ(p.fetch(p.codeBase + 4).op, Opcode::HALT);
}

TEST(Assembler, DisassemblyContainsLabels)
{
    Program p = assemble("main:\n  li r1, 1\nend:\n  halt\n");
    std::string d = p.disassemble();
    EXPECT_NE(d.find("main:"), std::string::npos);
    EXPECT_NE(d.find("end:"), std::string::npos);
    EXPECT_NE(d.find("halt"), std::string::npos);
}

TEST(Assembler, RecordsSourceLines)
{
    Program p = assemble("main:\n  li r1, 1\n\n  nop\n  halt\n");
    ASSERT_EQ(p.srcLines.size(), p.code.size());
    EXPECT_EQ(p.line(0), 2);
    EXPECT_EQ(p.line(1), 4);
    EXPECT_EQ(p.line(2), 5);
    EXPECT_EQ(p.line(-1), 0);
    EXPECT_EQ(p.line(99), 0);
}

TEST(Assembler, RecordsDataSegmentBounds)
{
    Program p = assemble(R"(
.data
a: .word 1, 2
b: .space 16
.text
main: halt
)");
    EXPECT_EQ(p.dataBase, defaultDataBase);
    EXPECT_EQ(p.dataLimit, p.dataBase + 2 * 8 + 16);

    Program q = assemble("main:\n halt\n");
    EXPECT_EQ(q.dataLimit, q.dataBase);  // empty data segment
}

TEST(Assembler, AllowCommentsRecordSuppressedRules)
{
    Program p = assemble(R"(
main:
    add r0, r1, r2   ; analyze:allow(write-zero)
    nop
    mv r3, tid       # analyze:allow(dead-def, use-before-def)
    halt
)");
    EXPECT_TRUE(p.allowed(0, "write-zero"));
    EXPECT_FALSE(p.allowed(0, "dead-def"));
    EXPECT_FALSE(p.allowed(1, "write-zero"));
    EXPECT_TRUE(p.allowed(2, "dead-def"));
    EXPECT_TRUE(p.allowed(2, "use-before-def"));
    EXPECT_FALSE(p.allowed(3, "write-zero"));
}

using AssemblerDeath = ::testing::Test;

TEST(AssemblerDeath, RejectsUnknownMnemonic)
{
    EXPECT_EXIT(assemble("main:\n  frobnicate r1\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(AssemblerDeath, RejectsUndefinedLabel)
{
    EXPECT_EXIT(assemble("main:\n  j nowhere\n"),
                ::testing::ExitedWithCode(1), "undefined label");
}

TEST(AssemblerDeath, UndefinedLabelReportsSourceLine)
{
    // The bad reference sits on line 3; the message must name that line
    // and the label, not just bail out.
    EXPECT_EXIT(assemble("main:\n  nop\n  j nowhere\n  halt\n"),
                ::testing::ExitedWithCode(1),
                "asm line 3: undefined label 'nowhere'");
    // Memory operands resolve labels too.
    EXPECT_EXIT(assemble("main:\n  ld r1, missing(r0)\n"),
                ::testing::ExitedWithCode(1),
                "asm line 2: undefined label 'missing'");
}

TEST(AssemblerDeath, DuplicateLabelReportsBothLines)
{
    EXPECT_EXIT(assemble("a:\n nop\na:\n halt\n"),
                ::testing::ExitedWithCode(1),
                "asm line 3: duplicate label 'a' \\(first defined at "
                "line 1\\)");
    // Duplicates across segments are caught as well.
    EXPECT_EXIT(assemble(".data\nbuf: .word 1\n.text\nbuf:\n halt\n"),
                ::testing::ExitedWithCode(1),
                "asm line 4: duplicate label 'buf' \\(first defined at "
                "line 2\\)");
}

TEST(AssemblerDeath, RejectsWrongRegisterClass)
{
    EXPECT_EXIT(assemble("main:\n  fadd f1, r2, f3\n"),
                ::testing::ExitedWithCode(1), "expected fp register");
    EXPECT_EXIT(assemble("main:\n  add r1, f2, r3\n"),
                ::testing::ExitedWithCode(1), "expected integer register");
}

TEST(AssemblerDeath, RejectsDuplicateLabel)
{
    EXPECT_EXIT(assemble("a:\n nop\na:\n halt\n"),
                ::testing::ExitedWithCode(1), "duplicate label");
}

TEST(AssemblerDeath, RejectsWrongOperandCount)
{
    EXPECT_EXIT(assemble("main:\n  add r1, r2\n"),
                ::testing::ExitedWithCode(1), "expected 3 operands");
}

TEST(AssemblerDeath, RejectsDataInText)
{
    EXPECT_EXIT(assemble(".text\n.word 5\n"),
                ::testing::ExitedWithCode(1), ".word in .text");
}
