/**
 * @file
 * Fetch synchronization FSM tests (paper §4.1 Figure 3(a)): MERGE /
 * DETECT / CATCHUP transitions, divergence splitting, FHB-driven catchup,
 * false-positive aborts, PC-coincidence remerging, priority ordering, and
 * thread removal.
 */

#include <gtest/gtest.h>

#include "core/mmt/fetch_sync.hh"

using namespace mmt;

namespace
{
std::vector<int>
flatIcount(const FetchSync &fs)
{
    return std::vector<int>(static_cast<std::size_t>(fs.numGroups()), 0);
}
} // namespace

TEST(FetchSync, StartsFullyMerged)
{
    FetchSync fs(2, 32, /*shared_fetch=*/true);
    fs.reset(0x1000);
    ASSERT_EQ(fs.numGroups(), 1);
    EXPECT_EQ(fs.group(0).members.count(), 2);
    EXPECT_EQ(fs.group(0).pc, 0x1000u);
    EXPECT_EQ(fs.classify(0), FetchMode::Merge);
    EXPECT_EQ(fs.threadGroup(0), 0);
    EXPECT_EQ(fs.threadGroup(1), 0);
}

TEST(FetchSync, BaselineKeepsSingletons)
{
    FetchSync fs(2, 32, /*shared_fetch=*/false);
    fs.reset(0x1000);
    ASSERT_EQ(fs.numGroups(), 2);
    EXPECT_EQ(fs.group(0).members.count(), 1);
    // Equal PCs never merge without shared fetch.
    EXPECT_FALSE(fs.tryMerge());
    EXPECT_EQ(fs.numGroups(), 2);
}

TEST(FetchSync, DivergenceSplitsGroup)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    ASSERT_EQ(gids.size(), 2u);
    EXPECT_EQ(fs.group(gids[0]).pc, 0x2000u);
    EXPECT_EQ(fs.group(gids[1]).pc, 0x1004u);
    EXPECT_EQ(fs.classify(gids[0]), FetchMode::Detect);
    EXPECT_EQ(fs.classify(gids[1]), FetchMode::Detect);
    EXPECT_EQ(fs.divergences.value(), 1u);
}

TEST(FetchSync, FhbHitEntersCatchup)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    // Thread 0 (ahead) takes a branch to 0x3000; recorded in its FHB.
    fs.onTakenBranch(gids[0], 0x3000);
    EXPECT_EQ(fs.classify(gids[0]), FetchMode::Detect);
    // Thread 1 later takes a branch to the same 0x3000 -> its target is
    // in thread 0's history -> thread 1 becomes the behind thread.
    fs.onTakenBranch(gids[1], 0x3000);
    EXPECT_EQ(fs.classify(gids[1]), FetchMode::Catchup);
    EXPECT_EQ(fs.classify(gids[0]), FetchMode::Catchup); // ahead side
    EXPECT_EQ(fs.catchupEntered.value(), 1u);
}

TEST(FetchSync, CatchupFalsePositiveAborts)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    fs.onTakenBranch(gids[0], 0x3000);
    fs.onTakenBranch(gids[1], 0x3000); // catchup starts
    ASSERT_EQ(fs.classify(gids[1]), FetchMode::Catchup);
    // The behind thread wanders off the ahead thread's recorded path.
    fs.onTakenBranch(gids[1], 0x9999);
    EXPECT_EQ(fs.classify(gids[1]), FetchMode::Detect);
    EXPECT_EQ(fs.classify(gids[0]), FetchMode::Detect);
    EXPECT_EQ(fs.catchupAborted.value(), 1u);
}

TEST(FetchSync, PcCoincidenceMerges)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    fs.group(gids[0]).pc = 0x5000;
    fs.group(gids[1]).pc = 0x5000;
    EXPECT_TRUE(fs.tryMerge());
    int gid = fs.threadGroup(0);
    EXPECT_EQ(gid, fs.threadGroup(1));
    EXPECT_EQ(fs.group(gid).members.count(), 2);
    EXPECT_EQ(fs.classify(gid), FetchMode::Merge);
    EXPECT_EQ(fs.remerges.value(), 1u);
}

TEST(FetchSync, MergeClearsHistoriesAndSamplesDistance)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    fs.countBranch(0);
    fs.countBranch(0);
    fs.countBranch(1);
    fs.onTakenBranch(gids[0], 0x3000);
    fs.group(gids[0]).pc = 0x5000;
    fs.group(gids[1]).pc = 0x5000;
    fs.tryMerge();
    EXPECT_EQ(fs.fhb(0).size(), 0);
    EXPECT_EQ(fs.fhb(1).size(), 0);
    EXPECT_EQ(fs.remergeDistance.total(), 2u); // one sample per thread
}

TEST(FetchSync, FetchOrderPrioritizesBehindThread)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    fs.onTakenBranch(gids[0], 0x3000);
    fs.onTakenBranch(gids[1], 0x3000); // group[1] chases group[0]
    auto order = fs.fetchOrder(flatIcount(fs));
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], gids[1]); // behind first
    EXPECT_EQ(order[1], gids[0]); // ahead (starved) last
}

TEST(FetchSync, FetchOrderUsesIcountWithinRank)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    std::vector<int> icount(static_cast<std::size_t>(fs.numGroups()), 0);
    icount[static_cast<std::size_t>(gids[0])] = 10;
    icount[static_cast<std::size_t>(gids[1])] = 3;
    auto order = fs.fetchOrder(icount);
    EXPECT_EQ(order[0], gids[1]); // fewest in-flight instructions first
}

TEST(FetchSync, FourThreadPartialMerge)
{
    FetchSync fs(4, 32, true);
    fs.reset(0x1000);
    // 4 threads diverge into {0,2} and {1,3}.
    ThreadMask a;
    a.set(0);
    a.set(2);
    ThreadMask b;
    b.set(1);
    b.set(3);
    auto gids = fs.onDivergence(0, {{a, 0x2000}, {b, 0x1004}});
    EXPECT_EQ(fs.classify(gids[0]), FetchMode::Merge); // pair still merged
    EXPECT_EQ(fs.classify(gids[1]), FetchMode::Merge);
    EXPECT_EQ(fs.liveThreads(), 4);
    // Pairs re-join at a common PC.
    fs.group(gids[0]).pc = 0x7000;
    fs.group(gids[1]).pc = 0x7000;
    EXPECT_TRUE(fs.tryMerge());
    EXPECT_EQ(fs.group(fs.threadGroup(0)).members.count(), 4);
}

TEST(FetchSync, RemoveThreadDissolvesEmptyGroups)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    fs.onTakenBranch(gids[0], 0x3000);
    fs.onTakenBranch(gids[1], 0x3000); // catchup pair
    fs.removeThread(0);                // ahead thread halts
    EXPECT_EQ(fs.threadGroup(0), -1);
    EXPECT_EQ(fs.liveThreads(), 1);
    // The behind thread fell back to DETECT (its target group died).
    EXPECT_EQ(fs.classify(fs.threadGroup(1)), FetchMode::Detect);
}

TEST(FetchSync, MergedGroupsSkipFhb)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    // Fully merged: taken branches must not touch the FHB (paper §6.2:
    // "the FHBs are used less than 30% of the time").
    fs.onTakenBranch(0, 0x2000);
    EXPECT_EQ(fs.fhb(0).size(), 0);
    EXPECT_EQ(fs.fhb(1).size(), 0);
}

TEST(FetchSync, CatchupAbortCountsOncePerAbort)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    fs.onTakenBranch(gids[0], 0x3000);
    fs.onTakenBranch(gids[1], 0x3000); // catchup starts
    EXPECT_EQ(fs.catchupEntered.value(), 1u);
    fs.onTakenBranch(gids[1], 0x9999); // off-path: one abort
    EXPECT_EQ(fs.catchupAborted.value(), 1u);
    EXPECT_EQ(fs.classify(gids[1]), FetchMode::Detect);
    // More wandering while already back in DETECT is not more aborts.
    fs.onTakenBranch(gids[1], 0x8888);
    fs.onTakenBranch(gids[1], 0x7777);
    EXPECT_EQ(fs.catchupAborted.value(), 1u);
    // Re-entering catchup and leaving via a merge is not an abort.
    fs.onTakenBranch(gids[1], 0x3000);
    EXPECT_EQ(fs.catchupEntered.value(), 2u);
    fs.group(gids[0]).pc = 0x4000;
    fs.group(gids[1]).pc = 0x4000;
    EXPECT_TRUE(fs.tryMerge());
    EXPECT_EQ(fs.catchupAborted.value(), 1u);
}

TEST(FetchSync, SeededReconvergenceBoostsOtherGroups)
{
    FetchSync fs(2, 32, true);
    fs.setStaticHints(/*fhb_seed=*/true, {0x5000}, {});
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    // First arrival at the static re-convergence point: no real history
    // anywhere, but the seed turns the other group into a chaser. The
    // arriver itself must NOT start chasing (a seed is not evidence the
    // other group already passed the target).
    fs.onTakenBranch(gids[0], 0x5000);
    EXPECT_EQ(fs.group(gids[0]).catchupAhead, -1);
    EXPECT_EQ(fs.group(gids[1]).catchupAhead, gids[0]);
    EXPECT_EQ(fs.classify(gids[0]), FetchMode::Catchup); // chased
    EXPECT_EQ(fs.classify(gids[1]), FetchMode::Catchup); // chasing
    EXPECT_EQ(fs.catchupEntered.value(), 1u);
    // The chaser's own branch into the point verifies on-path through
    // the arriver's recorded history.
    fs.onTakenBranch(gids[1], 0x5000);
    EXPECT_EQ(fs.classify(gids[1]), FetchMode::Catchup);
    EXPECT_EQ(fs.catchupAborted.value(), 0u);
}

TEST(FetchSync, CatchupToleratesStaticallyDivergentArms)
{
    FetchSync fs(2, 32, true);
    fs.setStaticHints(/*fhb_seed=*/true, {0x5000}, {0x4000});
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    fs.onTakenBranch(gids[0], 0x3000);
    fs.onTakenBranch(gids[1], 0x3000);
    ASSERT_EQ(fs.classify(gids[1]), FetchMode::Catchup);
    // A branch into a statically-divergent hammock arm is the chaser
    // walking its own side of a split the ahead group also crossed.
    fs.onTakenBranch(gids[1], 0x4000);
    EXPECT_EQ(fs.classify(gids[1]), FetchMode::Catchup);
    EXPECT_EQ(fs.catchupAborted.value(), 0u);
    // A target that is neither history nor a known arm still aborts.
    fs.onTakenBranch(gids[1], 0x9999);
    EXPECT_EQ(fs.classify(gids[1]), FetchMode::Detect);
    EXPECT_EQ(fs.catchupAborted.value(), 1u);
}

TEST(FetchSync, MergesAtDivergentPcsAfterVetoRetirement)
{
    // The merge-skip veto is retired (its ablation was bit-identical to
    // off): PC coincidence must merge even at a statically-divergent PC
    // installed for the catchup-tolerance hint.
    FetchSync fs(2, 32, true);
    fs.setStaticHints(/*fhb_seed=*/true, {}, {0x5000});
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    fs.group(gids[0]).pc = 0x5000;
    fs.group(gids[1]).pc = 0x5000;
    EXPECT_TRUE(fs.tryMerge());
}

TEST(FetchSync, HintsOffLeavesSeedInert)
{
    FetchSync fs(2, 32, true);
    fs.setStaticHints(false, {0x5000}, {0x5000});
    fs.reset(0x1000);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    // Arriving at 0x5000 must not start a seeded chase.
    fs.onTakenBranch(gids[0], 0x5000);
    EXPECT_EQ(fs.group(gids[1]).catchupAhead, -1);
    EXPECT_EQ(fs.catchupEntered.value(), 0u);
    // And merges there still happen.
    fs.group(gids[0]).pc = 0x5000;
    fs.group(gids[1]).pc = 0x5000;
    EXPECT_TRUE(fs.tryMerge());
}

TEST(FetchSync, SyncLatencyAccumulatesDivergenceToMergeCycles)
{
    FetchSync fs(2, 32, true);
    fs.reset(0x1000);
    fs.setCycle(100);
    auto gids = fs.onDivergence(
        0, {{ThreadMask::single(0), 0x2000}, {ThreadMask::single(1),
                                              0x1004}});
    fs.setCycle(160);
    fs.group(gids[0]).pc = 0x4000;
    fs.group(gids[1]).pc = 0x4000;
    EXPECT_TRUE(fs.tryMerge());
    EXPECT_EQ(fs.syncLatencyCycles.value(), 120u); // 60 cycles x 2 threads
    EXPECT_EQ(fs.syncLatencySamples.value(), 2u);
}
