/**
 * @file
 * Arena and BoundedRing unit tests: recycling reuses cells without
 * touching the host heap, object lifetimes are correct (constructors
 * and destructors run), live accounting balances, and the ring keeps
 * FIFO order through growth and wrap-around.
 */

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.hh"

using namespace mmt;

namespace
{

struct Tracked
{
    static int liveObjects;
    int value = 0;

    Tracked() { ++liveObjects; }
    explicit Tracked(int v) : value(v) { ++liveObjects; }
    ~Tracked() { --liveObjects; }
};

int Tracked::liveObjects = 0;

} // namespace

TEST(Arena, CreateRecycleBalancesAndRunsLifetimes)
{
    Tracked::liveObjects = 0;
    {
        Arena<Tracked, 8> arena;
        std::vector<Tracked *> objs;
        for (int i = 0; i < 20; ++i)
            objs.push_back(arena.create(i));
        EXPECT_EQ(arena.live(), 20u);
        EXPECT_EQ(Tracked::liveObjects, 20);
        EXPECT_EQ(arena.slabCount(), 3u); // ceil(20 / 8)
        for (int i = 0; i < 20; ++i)
            EXPECT_EQ(objs[static_cast<std::size_t>(i)]->value, i);

        for (Tracked *t : objs)
            arena.recycle(t);
        EXPECT_EQ(arena.live(), 0u);
        EXPECT_EQ(Tracked::liveObjects, 0);
    }
    EXPECT_EQ(Tracked::liveObjects, 0);
}

TEST(Arena, RecycledCellsAreReusedWithoutNewSlabs)
{
    Arena<Tracked, 16> arena;
    std::vector<Tracked *> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(arena.create(i));
    std::set<Tracked *> cells(first.begin(), first.end());
    std::size_t slabs = arena.slabCount();

    // Churn several full generations: every later create must land on a
    // recycled cell of the first generation, never a fresh slab.
    for (int gen = 0; gen < 10; ++gen) {
        for (Tracked *t : first)
            arena.recycle(t);
        first.clear();
        for (int i = 0; i < 16; ++i)
            first.push_back(arena.create(100 + i));
        for (Tracked *t : first)
            EXPECT_TRUE(cells.count(t)) << "fresh cell despite free list";
    }
    EXPECT_EQ(arena.slabCount(), slabs);
    EXPECT_EQ(arena.recycledHits(), 160u);
    for (Tracked *t : first)
        arena.recycle(t);
}

TEST(Arena, CreateResetsObjectState)
{
    // A recycled cell must not leak the previous instance's fields: the
    // constructor runs again on every create (the no-stale-state rule a
    // squash-free pipeline still depends on at end-of-run reclaim).
    Arena<Tracked, 4> arena;
    Tracked *a = arena.create(42);
    arena.recycle(a);
    Tracked *b = arena.create();
    EXPECT_EQ(b, a); // same cell...
    EXPECT_EQ(b->value, 0); // ...fresh state
    arena.recycle(b);
}

TEST(BoundedRing, FifoThroughGrowthAndWrap)
{
    BoundedRing<int> ring(4);
    // Interleave pushes and pops so head_ travels and the buffer wraps.
    int next_push = 0, next_pop = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 3; ++i)
            ring.push_back(next_push++);
        for (int i = 0; i < 2; ++i) {
            ASSERT_FALSE(ring.empty());
            EXPECT_EQ(ring.front(), next_pop);
            ring.pop_front();
            ++next_pop;
        }
    }
    EXPECT_EQ(ring.size(), 50u);
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i), next_pop + static_cast<int>(i));
    while (!ring.empty()) {
        EXPECT_EQ(ring.front(), next_pop++);
        ring.pop_front();
    }
    EXPECT_EQ(next_pop, next_push);
}

TEST(BoundedRing, GrowthPreservesOrderAcrossWrappedHead)
{
    BoundedRing<int> ring(2);
    ring.push_back(0);
    ring.push_back(1);
    ring.pop_front();
    // head_ is mid-buffer; growing now must relinearize correctly.
    for (int i = 2; i < 40; ++i)
        ring.push_back(i);
    for (int i = 1; i < 40; ++i) {
        EXPECT_EQ(ring.front(), i);
        ring.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}
