/**
 * @file
 * Branch predictor tests: 2-bit counter training through the 2-level
 * scheme, BTB indirect-target training, and RAS behaviour.
 */

#include <gtest/gtest.h>

#include "branch/branch_predictor.hh"

using namespace mmt;

namespace
{

Instruction
branchInst(Opcode op, std::int64_t target = 0x2000)
{
    Instruction i;
    i.op = op;
    i.rs1 = 1;
    i.rs2 = 2;
    i.imm = target;
    return i;
}

} // namespace

class BranchPredictorTest : public ::testing::Test
{
  protected:
    BranchPredictorParams params;
    BranchPredictor bp{params, 2};

    /** Run one predict/update/noteOutcome round; returns the prediction. */
    bool
    round(Addr pc, const Instruction &inst, bool taken)
    {
        BranchPrediction p = bp.predict(0, pc, inst);
        bp.update(0, pc, inst, taken, static_cast<Addr>(inst.imm));
        bp.noteOutcome(0, taken);
        return p.taken;
    }
};

TEST_F(BranchPredictorTest, LearnsAlwaysTaken)
{
    Instruction br = branchInst(Opcode::BNE);
    // gshare: the history register must saturate (all-taken) before the
    // indexed counter trains, so warm up past the history length.
    for (int i = 0; i < 20; ++i)
        round(0x1000, br, true);
    EXPECT_TRUE(round(0x1000, br, true));
    BranchPrediction p = bp.predict(0, 0x1000, br);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 0x2000u);
}

TEST_F(BranchPredictorTest, LearnsAlwaysNotTaken)
{
    Instruction br = branchInst(Opcode::BEQ);
    for (int i = 0; i < 4; ++i)
        round(0x1000, br, false);
    BranchPrediction p = bp.predict(0, 0x1000, br);
    EXPECT_FALSE(p.taken);
    EXPECT_EQ(p.target, 0x1004u); // fall-through target
}

TEST_F(BranchPredictorTest, LearnsLoopExitPattern)
{
    // Pattern TTTN repeating: history-based predictor should converge to
    // high accuracy after warmup.
    Instruction br = branchInst(Opcode::BLT);
    int correct = 0;
    int total = 0;
    for (int iter = 0; iter < 100; ++iter) {
        for (int k = 0; k < 4; ++k) {
            bool actual = k != 3;
            bool pred = round(0x1040, br, actual);
            if (iter >= 20) {
                ++total;
                correct += pred == actual;
            }
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

TEST_F(BranchPredictorTest, UnconditionalDirectAlwaysPredicted)
{
    Instruction j = branchInst(Opcode::J, 0x3000);
    j.rs1 = -1;
    j.rs2 = -1;
    BranchPrediction p = bp.predict(0, 0x1000, j);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x3000u);
}

TEST_F(BranchPredictorTest, BtbLearnsIndirectTargets)
{
    Instruction jalr = branchInst(Opcode::JALR);
    jalr.rs1 = 5;
    jalr.rd = regRa;
    // Cold: no target available.
    BranchPrediction p0 = bp.predict(0, 0x1000, jalr);
    EXPECT_FALSE(p0.targetValid);
    bp.update(0, 0x1000, jalr, true, 0x4000);
    BranchPrediction p1 = bp.predict(0, 0x1000, jalr);
    EXPECT_TRUE(p1.targetValid);
    EXPECT_EQ(p1.target, 0x4000u);
}

TEST_F(BranchPredictorTest, RasPredictsReturns)
{
    Instruction ret = branchInst(Opcode::JR);
    ret.rs1 = regRa;
    ret.rs2 = -1;
    bp.pushReturn(0, 0x1008);
    bp.pushReturn(0, 0x2008);
    BranchPrediction p = bp.predict(0, 0x5000, ret);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x2008u); // LIFO
    p = bp.predict(0, 0x5000, ret);
    EXPECT_EQ(p.target, 0x1008u);
}

TEST_F(BranchPredictorTest, RasOverflowDropsOldest)
{
    Instruction ret = branchInst(Opcode::JR);
    ret.rs1 = regRa;
    ret.rs2 = -1;
    for (int i = 0; i < params.rasEntries + 4; ++i)
        bp.pushReturn(0, 0x1000 + static_cast<Addr>(i) * 4);
    // Pop everything: the newest rasEntries survive.
    for (int i = 0; i < params.rasEntries; ++i) {
        BranchPrediction p = bp.predict(0, 0x5000, ret);
        EXPECT_TRUE(p.targetValid);
    }
    BranchPrediction p = bp.predict(0, 0x5000, ret);
    EXPECT_FALSE(p.targetValid); // empty -> BTB (cold)
}

TEST_F(BranchPredictorTest, ThreadsHaveIndependentHistories)
{
    Instruction br = branchInst(Opcode::BNE);
    // Train thread 0 taken; thread 1's RAS/history untouched.
    for (int i = 0; i < 8; ++i)
        round(0x1000, br, true);
    // Thread 1 with empty history indexes the same PHT region; since the
    // PHT is shared this may alias, but the RAS must be private:
    bp.pushReturn(0, 0xAAAA);
    Instruction ret = branchInst(Opcode::JR);
    ret.rs1 = regRa;
    ret.rs2 = -1;
    BranchPrediction p = bp.predict(1, 0x5000, ret);
    EXPECT_FALSE(p.targetValid); // thread 1's RAS is empty
}
