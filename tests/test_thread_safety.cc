/**
 * @file
 * Regression tests for the common-layer thread-safety audit behind the
 * sweep runner: concurrent runWorkload calls must be bit-identical to
 * serial runs (no hidden shared state in RNG, stats, or the pipeline),
 * and the log sink must not interleave messages mid-line.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "runner/result_store.hh"
#include "sim/simulator.hh"

using namespace mmt;

namespace
{

RunResult
runOne(const std::string &app, ConfigKind kind, int threads)
{
    return runWorkload(findWorkload(app), kind, threads, SimOverrides(),
                       /*check_golden=*/true);
}

} // namespace

TEST(ThreadSafety, ConcurrentSimulationsMatchSerialBitExact)
{
    // A mix of multi-execution (ammp, libsvm) and shared-memory (lu,
    // fft) kernels: together they exercise workload-init RNG seeding,
    // per-core stats, and the golden-model interpreter concurrently.
    struct Job
    {
        const char *app;
        ConfigKind kind;
        int threads;
    };
    const std::vector<Job> jobs = {
        {"ammp", ConfigKind::MMT_FXR, 2}, {"libsvm", ConfigKind::Base, 2},
        {"lu", ConfigKind::MMT_FXR, 4},   {"fft", ConfigKind::MMT_F, 2},
    };

    std::vector<std::string> serial;
    for (const Job &j : jobs)
        serial.push_back(
            serializeResult(runOne(j.app, j.kind, j.threads)));

    std::vector<std::string> concurrent(jobs.size());
    std::vector<std::thread> pool;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.emplace_back([&, i] {
            concurrent[i] = serializeResult(
                runOne(jobs[i].app, jobs[i].kind, jobs[i].threads));
        });
    }
    for (std::thread &t : pool)
        t.join();

    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(serial[i], concurrent[i]) << jobs[i].app;
}

TEST(ThreadSafety, RngInstancesAreIndependentAcrossThreads)
{
    // The simulator has no global generator; equal seeds must produce
    // equal streams no matter how many other Rngs run concurrently.
    auto drawAll = [](std::uint64_t seed) {
        Rng rng(seed);
        std::vector<std::uint64_t> vals(10000);
        for (auto &v : vals)
            v = rng.next();
        return vals;
    };
    std::vector<std::uint64_t> expected1 = drawAll(1234);
    std::vector<std::uint64_t> expected2 = drawAll(99);

    std::vector<std::vector<std::uint64_t>> got(8);
    std::vector<std::thread> pool;
    for (int i = 0; i < 8; ++i)
        pool.emplace_back(
            [&, i] { got[i] = drawAll(i % 2 ? 1234 : 99); });
    for (std::thread &t : pool)
        t.join();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], i % 2 ? expected1 : expected2);
}

TEST(ThreadSafety, LogLinesNeverInterleave)
{
    ::testing::internal::CaptureStderr();
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([t] {
            for (int i = 0; i < 50; ++i)
                warn("t%d line%d", t, i);
        });
    }
    for (std::thread &th : pool)
        th.join();
    std::string captured = ::testing::internal::GetCapturedStderr();

    // Every captured line must be one whole message: "warn: t<i> line<j>".
    std::size_t lines = 0;
    std::size_t pos = 0;
    while (pos < captured.size()) {
        std::size_t nl = captured.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        std::string line = captured.substr(pos, nl - pos);
        int tid = -1, i = -1;
        ASSERT_EQ(std::sscanf(line.c_str(), "warn: t%d line%d", &tid, &i),
                  2)
            << "mangled log line: '" << line << "'";
        EXPECT_TRUE(tid >= 0 && tid < 4 && i >= 0 && i < 50) << line;
        ++lines;
        pos = nl + 1;
    }
    EXPECT_EQ(lines, 4u * 50u);
}

TEST(ThreadSafety, InformFlagIsAtomicUnderToggling)
{
    ::testing::internal::CaptureStderr();
    std::thread toggler([] {
        for (int i = 0; i < 1000; ++i)
            setInformEnabled(i % 2 == 0);
    });
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([] {
            for (int i = 0; i < 500; ++i)
                inform("probe %d", i);
        });
    }
    toggler.join();
    for (std::thread &th : pool)
        th.join();
    setInformEnabled(false);
    ::testing::internal::GetCapturedStderr();
    SUCCEED(); // no crash, no torn writes (TSAN-clean by construction)
}
