/**
 * @file
 * EventWheel unit tests: exact-cycle delivery, FIFO ordering of
 * same-cycle events (the completion stage's determinism contract),
 * wheel wrap-around, and far-future events beyond the horizon.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/event_wheel.hh"

using namespace mmt;

namespace
{

/** Drain cycles [from, to], recording (cycle, item) pairs. */
std::vector<std::pair<Cycles, int>>
drain(EventWheel<int> &wheel, Cycles from, Cycles to)
{
    std::vector<std::pair<Cycles, int>> fired;
    for (Cycles c = from; c <= to; ++c)
        wheel.popDue(c, [&](int item) { fired.emplace_back(c, item); });
    return fired;
}

} // namespace

TEST(EventWheel, FiresAtExactCycle)
{
    EventWheel<int> wheel(16);
    wheel.schedule(3, 30);
    wheel.schedule(5, 50);
    wheel.schedule(4, 40);
    EXPECT_EQ(wheel.pending(), 3u);

    auto fired = drain(wheel, 1, 10);
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], std::make_pair(Cycles(3), 30));
    EXPECT_EQ(fired[1], std::make_pair(Cycles(4), 40));
    EXPECT_EQ(fired[2], std::make_pair(Cycles(5), 50));
    EXPECT_TRUE(wheel.empty());
}

TEST(EventWheel, SameCycleEventsFireInScheduleOrder)
{
    EventWheel<int> wheel(16);
    for (int i = 0; i < 100; ++i)
        wheel.schedule(7, i);
    auto fired = drain(wheel, 1, 7);
    ASSERT_EQ(fired.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(fired[static_cast<std::size_t>(i)].first, Cycles(7));
        EXPECT_EQ(fired[static_cast<std::size_t>(i)].second, i);
    }
}

TEST(EventWheel, WrapAroundKeepsLapsApart)
{
    // Horizon 8: cycles 3 and 11 share a slot. Scheduling both while at
    // cycle 2 is only legal for 3 (11 is a lap away but within horizon
    // relative to lastPopped = 2? 11-2 = 9 >= 8 -> far list). Walk the
    // wheel so both paths are exercised.
    EventWheel<int> wheel(8);
    wheel.schedule(3, 3);
    wheel.schedule(11, 11); // beyond horizon: overflow list
    auto fired = drain(wheel, 1, 16);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], std::make_pair(Cycles(3), 3));
    EXPECT_EQ(fired[1], std::make_pair(Cycles(11), 11));
}

TEST(EventWheel, SameSlotDifferentLapDoesNotFireEarly)
{
    EventWheel<int> wheel(8);
    Cycles now = 0;
    auto step = [&](std::vector<int> expect) {
        std::vector<int> got;
        wheel.popDue(++now, [&](int item) { got.push_back(item); });
        EXPECT_EQ(got, expect) << "cycle " << now;
    };
    step({});                 // cycle 1
    wheel.schedule(3, 3);     // slot 3, this lap
    wheel.schedule(8, 8);     // slot 0, next lap (8 - 1 = 7 < 8)
    step({});                 // cycle 2
    step({3});                // cycle 3
    for (Cycles c = 4; c <= 7; ++c)
        step({});
    step({8});                // cycle 8 (slot 0 after wrap)
    EXPECT_TRUE(wheel.empty());
}

TEST(EventWheel, FarFutureEventsSurviveManyLaps)
{
    EventWheel<int> wheel(8);
    wheel.schedule(1000, 1);   // ~125 laps out
    wheel.schedule(500, 2);
    wheel.schedule(2, 3);
    auto fired = drain(wheel, 1, 1100);
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], std::make_pair(Cycles(2), 3));
    EXPECT_EQ(fired[1], std::make_pair(Cycles(500), 2));
    EXPECT_EQ(fired[2], std::make_pair(Cycles(1000), 1));
}

TEST(EventWheel, MixedLatenciesMatchReferenceModel)
{
    // Pseudo-random schedule pattern (fixed LCG so the test is
    // deterministic) checked against a naive (cycle, seq) sort.
    EventWheel<int> wheel(32);
    std::vector<std::pair<Cycles, int>> expect;
    std::uint64_t lcg = 12345;
    Cycles now = 0;
    int seq = 0;
    std::vector<std::pair<Cycles, int>> fired;
    for (int step = 0; step < 2000; ++step) {
        ++now;
        wheel.popDue(now, [&](int item) { fired.emplace_back(now, item); });
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        int n_events = static_cast<int>((lcg >> 33) % 3);
        for (int e = 0; e < n_events; ++e) {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            Cycles delay = 1 + (lcg >> 33) % 200;
            expect.emplace_back(now + delay, seq);
            wheel.schedule(now + delay, seq++);
        }
    }
    // Everything with a due cycle <= the last popped cycle must have
    // fired, in (cycle, schedule-order) order.
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<std::pair<Cycles, int>> due;
    for (const auto &ev : expect) {
        if (ev.first <= now)
            due.push_back(ev);
    }
    EXPECT_EQ(fired, due);
    EXPECT_EQ(wheel.pending(), expect.size() - due.size());
}
