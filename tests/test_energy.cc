/**
 * @file
 * Energy model tests (paper §6.2): breakdown accounting, the <2% MMT
 * overhead claim, and the MERGE-mode gating of the overhead structures.
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "energy/energy_model.hh"
#include "iasm/assembler.hh"
#include "sim/simulator.hh"

using namespace mmt;

TEST(Energy, BreakdownArithmetic)
{
    EnergyBreakdown e;
    e.cache = 100.0;
    e.overhead = 2.0;
    e.other = 98.0;
    EXPECT_DOUBLE_EQ(e.total(), 200.0);
    EXPECT_DOUBLE_EQ(e.overheadFraction(), 0.01);
    EXPECT_NE(e.toString().find("overhead=2"), std::string::npos);
}

TEST(Energy, ZeroTotalHasZeroOverheadFraction)
{
    EnergyBreakdown e;
    EXPECT_DOUBLE_EQ(e.overheadFraction(), 0.0);
}

TEST(Energy, BaseRunHasNoMmtOverhead)
{
    RunResult r = runWorkload(findWorkload("ammp"), ConfigKind::Base, 2,
                              SimOverrides(), /*check_golden=*/false);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_GT(r.energy.cache, 0.0);
    EXPECT_GT(r.energy.other, 0.0);
    EXPECT_DOUBLE_EQ(r.energy.overhead, 0.0);
}

TEST(Energy, MmtOverheadBelowTwoPercent)
{
    // Paper §6.2: "the power contributed by the overhead is less than 2%
    // of total processor power" — across the full MMT configuration.
    for (const char *app : {"ammp", "twolf", "water-ns", "canneal"}) {
        RunResult r = runWorkload(findWorkload(app), ConfigKind::MMT_FXR,
                                  2, SimOverrides(), false);
        EXPECT_GT(r.energy.overhead, 0.0) << app;
        EXPECT_LT(r.energy.overheadFraction(), 0.02) << app;
    }
}

TEST(Energy, MergingReducesCacheEnergy)
{
    // Shared fetch + execution -> fewer I-cache and D-cache accesses.
    RunResult base = runWorkload(findWorkload("ammp"), ConfigKind::Base,
                                 2, SimOverrides(), false);
    RunResult mmt = runWorkload(findWorkload("ammp"), ConfigKind::MMT_FXR,
                                2, SimOverrides(), false);
    EXPECT_LT(mmt.energy.cache, base.energy.cache);
    EXPECT_LT(mmt.energy.total(), base.energy.total());
}

TEST(Energy, ScalesWithActivity)
{
    // Hand-built check: per-event energies accumulate as configured.
    EnergyParams p;
    Program prog = assemble("main:\n  li r1, 1\n  halt\n");
    CoreParams cp;
    cp.numThreads = 1;
    MemoryImage img;
    img.loadData(prog);
    SmtCore core(cp, &prog, {&img});
    core.run();
    EnergyBreakdown e = computeEnergy(core, p);
    // Static energy alone guarantees a positive floor.
    EXPECT_GE(e.other,
              static_cast<double>(core.now()) * p.staticPerCycle);
    // Doubling every per-event energy (at least) doubles nothing less
    // than the total.
    EnergyParams dbl = p;
    dbl.staticPerCycle *= 2;
    dbl.l1iAccess *= 2;
    dbl.l1dAccess *= 2;
    dbl.l2Access *= 2;
    dbl.dramAccess *= 2;
    dbl.traceCacheAccess *= 2;
    EnergyBreakdown e2 = computeEnergy(core, dbl);
    EXPECT_GT(e2.total(), e.total());
    EXPECT_DOUBLE_EQ(e2.cache, 2.0 * e.cache);
}
