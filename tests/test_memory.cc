/**
 * @file
 * Tests for the memory substrate: functional images, the tag-only cache
 * (hits, LRU, address-space isolation, fill-aware timing), the MSHR-
 * limited memory system, and the trace cache.
 */

#include <gtest/gtest.h>

#include "iasm/assembler.hh"
#include "mem/cache.hh"
#include "mem/memory_image.hh"
#include "mem/memory_system.hh"
#include "mem/trace_cache.hh"

using namespace mmt;

TEST(MemoryImage, ReadWriteAndDefaultZero)
{
    MemoryImage img;
    EXPECT_EQ(img.read64(0x1000), 0u);
    img.write64(0x1000, 0xdeadbeef);
    EXPECT_EQ(img.read64(0x1000), 0xdeadbeefu);
    img.write64(0x1000, 7);
    EXPECT_EQ(img.read64(0x1000), 7u);
    // A neighbouring word is unaffected.
    EXPECT_EQ(img.read64(0x1008), 0u);
}

TEST(MemoryImage, SparsePages)
{
    MemoryImage img;
    img.write64(0x0, 1);
    img.write64(0x100000, 2);
    img.write64(0x7ff0000, 3);
    EXPECT_EQ(img.pageCount(), 3u);
    EXPECT_EQ(img.read64(0x100000), 2u);
}

TEST(MemoryImage, ContentEquality)
{
    MemoryImage a, b;
    a.write64(0x1000, 5);
    EXPECT_FALSE(a.contentEquals(b));
    b.write64(0x1000, 5);
    EXPECT_TRUE(a.contentEquals(b));
    // Zero writes match untouched memory.
    a.write64(0x2000, 0);
    EXPECT_TRUE(a.contentEquals(b));
    b.write64(0x1000, 6);
    EXPECT_FALSE(a.contentEquals(b));
}

TEST(MemoryImage, LoadProgramData)
{
    Program p = assemble(".data\nv: .word 11, 22\n.text\nmain: halt\n");
    MemoryImage img;
    img.loadData(p);
    EXPECT_EQ(img.read64(p.symbol("v")), 11u);
    EXPECT_EQ(img.read64(p.symbol("v") + 8), 22u);
}

TEST(Cache, HitAfterMiss)
{
    Cache c({"t", 1024, 2, 64});
    EXPECT_FALSE(c.access(0, 0x100, 0, 10).hit);
    EXPECT_TRUE(c.access(0, 0x100, 20, 10).hit);
    EXPECT_TRUE(c.access(0, 0x13f, 30, 10).hit); // same 64B line
    EXPECT_FALSE(c.access(0, 0x140, 40, 10).hit); // next line
    EXPECT_EQ(c.accesses.value(), 4u);
    EXPECT_EQ(c.misses.value(), 2u);
}

TEST(Cache, LruReplacement)
{
    // 2-way, 8 sets of 64B lines: addresses 64*8 apart share a set.
    Cache c({"t", 1024, 2, 64});
    Addr stride = 64 * 8;
    c.access(0, 0, 0, 1);
    c.access(0, stride, 1, 1);
    EXPECT_TRUE(c.access(0, 0, 2, 1).hit);          // touch A
    EXPECT_FALSE(c.access(0, 2 * stride, 3, 1).hit); // evicts B (LRU)
    EXPECT_TRUE(c.access(0, 0, 4, 1).hit);
    EXPECT_FALSE(c.access(0, stride, 5, 1).hit);     // B was evicted
}

TEST(Cache, AddressSpacesDoNotAlias)
{
    Cache c({"t", 1024, 2, 64});
    c.access(0, 0x100, 0, 1);
    EXPECT_FALSE(c.access(1, 0x100, 1, 1).hit);
    EXPECT_TRUE(c.access(0, 0x100, 2, 1).hit);
    EXPECT_TRUE(c.access(1, 0x100, 3, 1).hit);
}

TEST(Cache, FillAwareHitUnderMiss)
{
    Cache c({"t", 1024, 2, 64});
    auto miss = c.access(0, 0x200, 100, 50);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.readyAt, 150u);
    // A hit while the fill is in flight waits for it.
    auto hit = c.access(0, 0x200, 110, 50);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.readyAt, 150u);
    // After the fill lands, hits are immediate.
    auto late = c.access(0, 0x200, 200, 50);
    EXPECT_TRUE(late.hit);
    EXPECT_EQ(late.readyAt, 200u);
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c({"t", 1024, 2, 64});
    EXPECT_FALSE(c.probe(0, 0x300));
    EXPECT_FALSE(c.access(0, 0x300, 0, 1).hit);
    EXPECT_TRUE(c.probe(0, 0x300));
}

TEST(MemorySystem, LatencyLevels)
{
    MemoryParams mp;
    MemorySystem ms(mp);
    // Cold: L1 miss + L2 miss -> DRAM.
    Cycles t1 = ms.dataAccess(0, 0x1000, false, 0);
    EXPECT_GE(t1, mp.l1Latency + mp.l2Latency + mp.dramLatency);
    // Warm: L1 hit.
    Cycles t2 = ms.dataAccess(0, 0x1000, false, t1);
    EXPECT_EQ(t2, t1 + mp.l1Latency);
    // L1-evicted but L2-resident data returns at L2 latency (not tested
    // here directly; covered by the latency ordering below).
    EXPECT_GT(t1 - 0, t2 - t1);
}

TEST(MemorySystem, MshrLimitSerializesMisses)
{
    MemoryParams mp;
    mp.numMshrs = 1;
    MemorySystem ms(mp);
    Cycles a = ms.dataAccess(0, 0x10000, false, 0);
    Cycles b = ms.dataAccess(0, 0x20000, false, 0);
    // With one MSHR the second miss starts after the first completes.
    EXPECT_GT(b, a);
    EXPECT_GE(ms.mshrStalls.value(), 1u);

    MemoryParams mp2;
    mp2.numMshrs = 16;
    MemorySystem ms2(mp2);
    Cycles a2 = ms2.dataAccess(0, 0x10000, false, 0);
    Cycles b2 = ms2.dataAccess(0, 0x20000, false, 0);
    EXPECT_EQ(a2, b2); // parallel misses
}

TEST(MemorySystem, InstFetchSharedAcrossSpaces)
{
    MemoryParams mp;
    MemorySystem ms(mp);
    Cycles cold = ms.instAccess(0, 0x1000, 0);
    EXPECT_GT(cold, mp.l1Latency);
    // Second thread fetching the same code hits (shared binary pages).
    Cycles warm = ms.instAccess(0, 0x1000, cold);
    EXPECT_EQ(warm, cold + mp.l1Latency);
}

TEST(TraceCache, MissThenHit)
{
    TraceCacheParams p;
    TraceCache tc(p);
    EXPECT_FALSE(tc.access(0, 0x1000));
    EXPECT_TRUE(tc.access(0, 0x1000));
    EXPECT_EQ(tc.accesses.value(), 2u);
    EXPECT_EQ(tc.misses.value(), 1u);
}
