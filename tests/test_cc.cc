/**
 * @file
 * mmtc frontend unit tests: front-end diagnostics, interpreter
 * semantics (which mirror isa/exec.cc), SPMD slicing decisions on
 * hand-built candidates, and golden equivalence of small compiled
 * programs against the reference interpreter at 1..4 threads.
 */

#include <gtest/gtest.h>

#include "cc/compiler.hh"
#include "cc/interp.hh"
#include "cc/parser.hh"
#include "iasm/assembler.hh"
#include "mem/memory_image.hh"
#include "profile/tracer.hh"

using namespace mmt;

namespace
{

std::vector<std::int64_t>
interp(const std::string &src)
{
    cc::Module m = cc::parse(src, "test");
    return cc::interpret(m);
}

/** The out() log as the ISA records it (raw 64-bit words). */
std::vector<std::uint64_t>
toWords(const std::vector<std::int64_t> &vals)
{
    std::vector<std::uint64_t> w;
    for (std::int64_t v : vals)
        w.push_back(static_cast<std::uint64_t>(v));
    return w;
}

/** Compile + assemble + run functionally at @p nthreads (shared
 *  image, MT conventions); returns thread 0's out() log and checks
 *  every thread produced the same one. */
std::vector<std::uint64_t>
runCompiled(const std::string &src, int nthreads,
            const cc::CompileOptions &opt = {})
{
    cc::CompileResult res = cc::compile(src, "test", opt);
    Program prog = assemble(res.iasm, defaultCodeBase, defaultDataBase,
                            "test");
    MemoryImage img;
    img.loadData(prog);
    if (prog.symbols.count(cc::kNumThreadsSym)) {
        img.write64(prog.symbol(cc::kNumThreadsSym),
                    static_cast<std::uint64_t>(nthreads));
    }
    std::vector<MemoryImage *> ptrs(static_cast<std::size_t>(nthreads),
                                    &img);
    FunctionalCpu cpu(&prog, ptrs, false);
    cpu.run(50'000'000);
    for (int t = 1; t < nthreads; ++t)
        EXPECT_EQ(cpu.thread(t).output, cpu.thread(0).output)
            << "thread " << t << " diverged";
    return cpu.thread(0).output;
}

/** Golden check: interpreter result == compiled result at 1, 2 and 4
 *  threads. */
void
expectGolden(const std::string &src)
{
    std::vector<std::uint64_t> expected = toWords(interp(src));
    for (int n : {1, 2, 4})
        EXPECT_EQ(runCompiled(src, n), expected) << n << " threads";
}

} // namespace

// ----------------------------------------------------------- frontend --

TEST(CcParser, RejectsUndeclaredIdentifier)
{
    EXPECT_EXIT(cc::parse("int main() { return x; }", "t"),
                ::testing::ExitedWithCode(1), "use of undeclared 'x'");
}

TEST(CcParser, RejectsLocalArrays)
{
    EXPECT_EXIT(cc::parse("int main() { int a[4]; return 0; }", "t"),
                ::testing::ExitedWithCode(1),
                "local arrays are not supported");
}

TEST(CcParser, RejectsBreakOutsideLoop)
{
    EXPECT_EXIT(cc::parse("int main() { break; }", "t"),
                ::testing::ExitedWithCode(1), "'break' outside a loop");
}

TEST(CcParser, RejectsWrongArity)
{
    EXPECT_EXIT(
        cc::parse("int f(int a) { return a; }"
                  "int main() { return f(1, 2); }",
                  "t"),
        ::testing::ExitedWithCode(1), "expects 1 argument\\(s\\), got 2");
}

TEST(CcParser, RejectsDoubleCondition)
{
    EXPECT_EXIT(cc::parse("int main() { double d = 1.0; if (d) {} "
                          "return 0; }",
                          "t"),
                ::testing::ExitedWithCode(1), "condition must be an int");
}

TEST(CcCompiler, RejectsReservedPrefix)
{
    EXPECT_EXIT(cc::compile("int __mmtc_x = 0; int main() { return 0; }",
                            "t"),
                ::testing::ExitedWithCode(1), "reserved");
}

TEST(CcCompiler, RejectsMainWithParameters)
{
    EXPECT_EXIT(cc::compile("int main(int a) { return a; }", "t"),
                ::testing::ExitedWithCode(1),
                "main\\(\\) must take no parameters");
}

TEST(CcCompiler, RejectsTooManyParameters)
{
    EXPECT_EXIT(cc::compile("int f(int a, int b, int c, int d, int e, "
                            "int g, int h) { return a; }"
                            "int main() { return 0; }",
                            "t"),
                ::testing::ExitedWithCode(1), "exceeds 6 parameters");
}

// -------------------------------------------------------- interpreter --

TEST(CcInterp, ArithmeticMirrorsIsaSemantics)
{
    // DIV by zero yields -1, REM by zero the dividend, fp->int
    // truncates — exactly isa/exec.cc.
    auto out = interp("int main() {"
                      "  out(7 / 0); out(7 % 0); out(-9 / 2);"
                      "  out(int(2.9)); out(int(0.0 - 2.9));"
                      "  return 0; }");
    EXPECT_EQ(out, (std::vector<std::int64_t>{-1, 7, -4, 2, -2}));
}

TEST(CcInterp, ShortCircuitAndPrecedence)
{
    auto out = interp("int g = 0;"
                      "int touch() { g = g + 1; return 1; }"
                      "int main() {"
                      "  out(0 && touch()); out(g);"
                      "  out(1 || touch()); out(g);"
                      "  out(2 + 3 * 4); out((2 + 3) * 4);"
                      "  out(10 - 4 - 3);"
                      "  return 0; }");
    EXPECT_EQ(out, (std::vector<std::int64_t>{0, 0, 1, 0, 14, 20, 3}));
}

TEST(CcInterp, FunctionsAndGlobalArrays)
{
    auto out = interp("int fib[16];"
                      "int fill(int n) {"
                      "  fib[0] = 0; fib[1] = 1;"
                      "  for (int i = 2; i < n; i = i + 1) {"
                      "    fib[i] = fib[i - 1] + fib[i - 2];"
                      "  }"
                      "  return fib[n - 1]; }"
                      "int main() { out(fill(10)); return 0; }");
    EXPECT_EQ(out, (std::vector<std::int64_t>{34}));
}

TEST(CcInterpDeath, CatchesOutOfBoundsAccess)
{
    EXPECT_EXIT(interp("int a[4]; int main() { out(a[9]); return 0; }"),
                ::testing::ExitedWithCode(1), "out of bounds");
}

TEST(CcInterpDeath, CatchesRunawayLoop)
{
    EXPECT_EXIT(interp("int main() { while (1) {} return 0; }"),
                ::testing::ExitedWithCode(1), "step limit");
}

// ------------------------------------------------------------ slicing --

TEST(CcSpmd, SlicesCanonicalLoopWithReduction)
{
    cc::CompileResult res = cc::compile(
        "int n = 32; int a[32];"
        "int main() {"
        "  int s = 0;"
        "  for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }"
        "  out(s); return 0; }",
        "t");
    ASSERT_EQ(res.spmd.sliced.size(), 1u);
    EXPECT_EQ(res.spmd.sliced[0].reductions, 1);
    EXPECT_TRUE(res.spmd.rejected.empty());
    EXPECT_TRUE(res.spmd.warnings.empty());
    // The rewritten loop re-converges through a barrier and spills the
    // partials to a per-thread scratch array.
    EXPECT_NE(res.iasm.find("barrier"), std::string::npos);
    EXPECT_NE(res.iasm.find("__mmtc_red0"), std::string::npos);
}

TEST(CcSpmd, RejectsCallInLoop)
{
    cc::CompileResult res = cc::compile(
        "int n = 8; int a[8];"
        "int f(int x) { return x + 1; }"
        "int main() {"
        "  for (int i = 0; i < n; i = i + 1) { a[i] = f(i); }"
        "  out(a[3]); return 0; }",
        "t");
    EXPECT_TRUE(res.spmd.sliced.empty());
    ASSERT_EQ(res.spmd.rejected.size(), 1u);
    EXPECT_NE(res.spmd.rejected[0].find("calls a function"),
              std::string::npos);
}

TEST(CcSpmd, RejectsScalarGlobalStoreInLoop)
{
    cc::CompileResult res = cc::compile(
        "int n = 8; int g = 0;"
        "int main() {"
        "  for (int i = 0; i < n; i = i + 1) { g = i; }"
        "  out(g); return 0; }",
        "t");
    EXPECT_TRUE(res.spmd.sliced.empty());
    ASSERT_EQ(res.spmd.rejected.size(), 1u);
    EXPECT_NE(res.spmd.rejected[0].find("stores a scalar global"),
              std::string::npos);
}

TEST(CcSpmd, RejectsTwoStoreIndexForms)
{
    cc::CompileResult res = cc::compile(
        "int n = 8; int a[32];"
        "int main() {"
        "  for (int i = 0; i < n; i = i + 1) {"
        "    a[i] = i; a[i + 8] = i;"
        "  }"
        "  out(a[3]); return 0; }",
        "t");
    EXPECT_TRUE(res.spmd.sliced.empty());
    ASSERT_EQ(res.spmd.rejected.size(), 1u);
    EXPECT_NE(res.spmd.rejected[0].find("two different index forms"),
              std::string::npos);
}

TEST(CcSpmd, RejectsNonCanonicalStep)
{
    // Doubling induction variable: not iv += C.
    cc::CompileResult res = cc::compile(
        "int n = 64; int a[64];"
        "int main() {"
        "  for (int i = 1; i < n; i = i * 2) { a[i] = i; }"
        "  out(a[4]); return 0; }",
        "t");
    EXPECT_TRUE(res.spmd.sliced.empty());
    ASSERT_EQ(res.spmd.rejected.size(), 1u);
    EXPECT_NE(res.spmd.rejected[0].find("no canonical induction"),
              std::string::npos);
}

TEST(CcSpmd, RejectsLoopCarriedScalarThatIsNotAReduction)
{
    // s = s * 2 + a[i] is loop-carried but not a plain `+`-reduction.
    cc::CompileResult res = cc::compile(
        "int n = 8; int a[8];"
        "int main() {"
        "  int s = 1;"
        "  for (int i = 0; i < n; i = i + 1) { s = s * 2 + a[i]; }"
        "  out(s); return 0; }",
        "t");
    EXPECT_TRUE(res.spmd.sliced.empty());
    ASSERT_EQ(res.spmd.rejected.size(), 1u);
}

TEST(CcSpmd, WarnsOnRedundantReadModifyWrite)
{
    // g = g + 1 outside any sliced loop runs once per thread under MT;
    // the hazard scan must flag the redundant RMW.
    cc::CompileResult res = cc::compile(
        "int n = 8; int a[8]; int g = 0;"
        "int main() {"
        "  g = g + 1;"
        "  for (int i = 0; i < n; i = i + 1) { a[i] = i; }"
        "  out(a[3] + g); return 0; }",
        "t");
    EXPECT_EQ(res.spmd.sliced.size(), 1u);
    ASSERT_FALSE(res.spmd.warnings.empty());
    EXPECT_NE(res.spmd.warnings[0].find("read-modify-written"),
              std::string::npos);
}

TEST(CcSpmd, NoSpmdOptionDisablesSlicing)
{
    cc::CompileOptions opt;
    opt.spmd = false;
    cc::CompileResult res = cc::compile(
        "int n = 8; int a[8];"
        "int main() {"
        "  for (int i = 0; i < n; i = i + 1) { a[i] = i; }"
        "  out(a[3]); return 0; }",
        "t", opt);
    EXPECT_TRUE(res.spmd.sliced.empty());
    EXPECT_EQ(res.iasm.find("barrier"), std::string::npos);
}

// --------------------------------------------------- golden equivalence --

TEST(CcGolden, SlicedLoopsMatchInterpreterAtAllThreadCounts)
{
    expectGolden("int n = 48; int a[48]; int b[48];"
                 "int main() {"
                 "  for (int i = 0; i < n; i = i + 1) { a[i] = i * 3; }"
                 "  int s = 0;"
                 "  for (int i = 0; i < n; i = i + 1) {"
                 "    b[i] = a[i] + 1; s = s + b[i];"
                 "  }"
                 "  out(s); return 0; }");
}

TEST(CcGolden, FpReductionAndCalls)
{
    expectGolden("int n = 16; double v[16];"
                 "double scale(double x) { return x * 1.5; }"
                 "int main() {"
                 "  for (int i = 0; i < n; i = i + 1) {"
                 "    v[i] = 0.25 * i;"
                 "  }"
                 "  double s = 0.0;"
                 "  for (int i = 0; i < n; i = i + 1) { s = s + v[i]; }"
                 "  out(int(scale(s) * 100.0));"
                 "  return 0; }");
}

TEST(CcGolden, ControlFlowHeavyRedundantCode)
{
    expectGolden("int main() {"
                 "  int x = 0;"
                 "  for (int i = 0; i < 20; i = i + 1) {"
                 "    if (i % 3 == 0) { x = x + i; }"
                 "    else { if (i % 3 == 1) { x = x - 1; } }"
                 "    while (x > 25) { x = x - 10; }"
                 "  }"
                 "  out(x); return 0; }");
}

TEST(CcGolden, SpillsSurvivePerThreadStacks)
{
    // More live values than allocatable registers force stack spills;
    // per-thread stack pointers must keep sliced iterations private.
    expectGolden(
        "int n = 24; int a[24];"
        "int main() {"
        "  int v0 = 1; int v1 = 2; int v2 = 3; int v3 = 4; int v4 = 5;"
        "  int v5 = 6; int v6 = 7; int v7 = 8; int v8 = 9; int v9 = 10;"
        "  int va = 11; int vb = 12; int vc = 13; int vd = 14;"
        "  int ve = 15; int vf = 16; int vg = 17; int vh = 18;"
        "  for (int i = 0; i < n; i = i + 1) { a[i] = i * i; }"
        "  int s = 0;"
        "  for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }"
        "  out(s + v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + v9"
        "      + va + vb + vc + vd + ve + vf + vg + vh);"
        "  return 0; }");
}
