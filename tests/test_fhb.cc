/**
 * @file
 * Fetch History Buffer tests: CAM semantics, circular replacement, and
 * capacity sweeps (paper §4.1, §6.4).
 */

#include <gtest/gtest.h>

#include "core/mmt/fhb.hh"

using namespace mmt;

TEST(Fhb, RecordsAndFinds)
{
    FetchHistoryBuffer fhb(32);
    EXPECT_FALSE(fhb.contains(0x1000));
    fhb.record(0x1000);
    fhb.record(0x2000);
    EXPECT_TRUE(fhb.contains(0x1000));
    EXPECT_TRUE(fhb.contains(0x2000));
    EXPECT_FALSE(fhb.contains(0x3000));
    EXPECT_EQ(fhb.size(), 2);
}

TEST(Fhb, CircularEviction)
{
    FetchHistoryBuffer fhb(4);
    for (Addr pc = 0; pc < 6; ++pc)
        fhb.record(0x1000 + pc * 4);
    EXPECT_EQ(fhb.size(), 4);
    // The two oldest entries were overwritten.
    EXPECT_FALSE(fhb.contains(0x1000));
    EXPECT_FALSE(fhb.contains(0x1004));
    EXPECT_TRUE(fhb.contains(0x1008));
    EXPECT_TRUE(fhb.contains(0x1014));
}

TEST(Fhb, ClearEmptiesHistory)
{
    FetchHistoryBuffer fhb(8);
    fhb.record(0x1000);
    fhb.clear();
    EXPECT_EQ(fhb.size(), 0);
    EXPECT_FALSE(fhb.contains(0x1000));
    fhb.record(0x2000);
    EXPECT_TRUE(fhb.contains(0x2000));
}

TEST(Fhb, DuplicateTargetsAllowed)
{
    FetchHistoryBuffer fhb(4);
    fhb.record(0x1000);
    fhb.record(0x1000);
    fhb.record(0x2000);
    fhb.record(0x3000);
    fhb.record(0x4000); // evicts first 0x1000
    EXPECT_TRUE(fhb.contains(0x1000)); // second copy survives
}

TEST(Fhb, StatsCounting)
{
    FetchHistoryBuffer fhb(8);
    fhb.record(0x1000);
    EXPECT_EQ(fhb.records.value(), 1u);
    fhb.contains(0x1000);
    fhb.contains(0x9999);
    EXPECT_EQ(fhb.searches.value(), 2u);
    EXPECT_EQ(fhb.hits.value(), 1u);
}

/** Parameterized capacity sweep mirroring the paper's 8..128 sizes. */
class FhbSizeTest : public ::testing::TestWithParam<int>
{
};

TEST_P(FhbSizeTest, RetainsExactlyCapacityEntries)
{
    int n = GetParam();
    FetchHistoryBuffer fhb(n);
    const int extra = 5;
    for (int i = 0; i < n + extra; ++i)
        fhb.record(0x1000 + static_cast<Addr>(i) * 4);
    EXPECT_EQ(fhb.size(), n);
    for (int i = 0; i < extra; ++i)
        EXPECT_FALSE(fhb.contains(0x1000 + static_cast<Addr>(i) * 4));
    for (int i = extra; i < n + extra; ++i)
        EXPECT_TRUE(fhb.contains(0x1000 + static_cast<Addr>(i) * 4));
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, FhbSizeTest,
                         ::testing::Values(8, 16, 32, 64, 128));
