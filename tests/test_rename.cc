/**
 * @file
 * Renaming tests (paper §4.2.4): shared initial mappings, private sp/tid
 * for MT workloads, merged-destination recording in multiple RATs, and
 * the append-only physical register file.
 */

#include <gtest/gtest.h>

#include "core/rename.hh"

using namespace mmt;

namespace
{

std::vector<std::pair<RegVal, RegVal>>
spTid(int n)
{
    std::vector<std::pair<RegVal, RegVal>> v;
    for (int t = 0; t < n; ++t)
        v.emplace_back(0x8000 - static_cast<RegVal>(t) * 0x100,
                       static_cast<RegVal>(t));
    return v;
}

} // namespace

TEST(PhysRegFile, AllocReadWriteReady)
{
    PhysRegFile prf;
    PhysReg a = prf.alloc(42, true);
    PhysReg b = prf.alloc(7, false);
    EXPECT_NE(a, b);
    EXPECT_EQ(prf.value(a), 42u);
    EXPECT_TRUE(prf.ready(a));
    EXPECT_FALSE(prf.ready(b));
    prf.setReady(b);
    EXPECT_TRUE(prf.ready(b));
    EXPECT_EQ(prf.size(), 2u);
}

TEST(Rename, MeInitAllMappingsShared)
{
    RenameUnit ru;
    std::array<RegVal, numArchRegs> init{};
    init[5] = 99;
    ru.init(4, init, /*private_sp=*/false, /*private_tid=*/false, spTid(4));
    for (RegIndex r = 0; r < numArchRegs; ++r) {
        EXPECT_TRUE(ru.mappingsEqual(r, ThreadMask(0b1111)))
            << "reg " << r;
    }
    EXPECT_EQ(ru.prf().value(ru.lookup(2, 5)), 99u);
}

TEST(Rename, MtInitPrivateSpAndTid)
{
    RenameUnit ru;
    std::array<RegVal, numArchRegs> init{};
    ru.init(2, init, true, true, spTid(2));
    EXPECT_FALSE(ru.mappingsEqual(regSp, ThreadMask(0b0011)));
    EXPECT_FALSE(ru.mappingsEqual(regTid, ThreadMask(0b0011)));
    EXPECT_TRUE(ru.mappingsEqual(0, ThreadMask(0b0011)));
    EXPECT_EQ(ru.prf().value(ru.lookup(1, regTid)), 1u);
    EXPECT_EQ(ru.prf().value(ru.lookup(0, regSp)), 0x8000u);
}

TEST(Rename, LimitInitSharedTidPrivateSp)
{
    RenameUnit ru;
    std::array<RegVal, numArchRegs> init{};
    ru.init(2, init, true, false, spTid(2));
    EXPECT_FALSE(ru.mappingsEqual(regSp, ThreadMask(0b0011)));
    EXPECT_TRUE(ru.mappingsEqual(regTid, ThreadMask(0b0011)));
}

TEST(Rename, MergedDestinationRecordedInAllRats)
{
    RenameUnit ru;
    std::array<RegVal, numArchRegs> init{};
    ru.init(4, init, false, false, spTid(4));
    PhysReg p = ru.prf().alloc(123, false);
    ThreadMask itid(0b0101);
    itid.forEach([&](ThreadId t) { ru.setMapping(t, 7, p); });
    EXPECT_TRUE(ru.mappingsEqual(7, itid));
    EXPECT_EQ(ru.lookup(0, 7), p);
    EXPECT_EQ(ru.lookup(2, 7), p);
    // Threads outside the ITID keep the old shared mapping.
    EXPECT_NE(ru.lookup(1, 7), p);
    EXPECT_FALSE(ru.mappingsEqual(7, ThreadMask(0b0011)));
}

TEST(Rename, SplitDestinationsDiverge)
{
    RenameUnit ru;
    std::array<RegVal, numArchRegs> init{};
    ru.init(2, init, false, false, spTid(2));
    ru.setMapping(0, 3, ru.prf().alloc(1, false));
    ru.setMapping(1, 3, ru.prf().alloc(2, false));
    EXPECT_FALSE(ru.mappingsEqual(3, ThreadMask(0b0011)));
    EXPECT_EQ(ru.prf().value(ru.lookup(0, 3)), 1u);
    EXPECT_EQ(ru.prf().value(ru.lookup(1, 3)), 2u);
}

TEST(Rename, ValuesPersistAcrossRemapping)
{
    // Append-only PRF: an old physical register stays readable after the
    // architected register is remapped (needed by register merging).
    RenameUnit ru;
    std::array<RegVal, numArchRegs> init{};
    ru.init(1, init, false, false, spTid(1));
    PhysReg old = ru.lookup(0, 4);
    ru.setMapping(0, 4, ru.prf().alloc(55, true));
    EXPECT_EQ(ru.prf().value(old), 0u);
    EXPECT_EQ(ru.prf().value(ru.lookup(0, 4)), 55u);
}
