/**
 * @file
 * Instruction splitter tests (paper §4.2.2): minimal-partition outputs,
 * Filter behaviour under partial ITIDs, sourceless instructions, and the
 * register-merge provenance flag. Includes a property-style exhaustive
 * sweep over all ITIDs and sharing relations for two source registers.
 */

#include <gtest/gtest.h>

#include "core/mmt/rst.hh"
#include "core/mmt/splitter.hh"

using namespace mmt;

namespace
{

Instruction
r3(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

/** Assert @p parts is a partition of @p itid. */
void
expectPartition(const std::vector<SplitInstance> &parts, ThreadMask itid)
{
    ThreadMask seen;
    for (const SplitInstance &p : parts) {
        ASSERT_FALSE(p.itid.empty());
        EXPECT_TRUE((seen & p.itid).empty()) << "overlapping instances";
        seen = seen | p.itid;
    }
    EXPECT_EQ(seen, itid);
}

} // namespace

TEST(Splitter, FullySharedStaysMerged)
{
    RegisterSharingTable rst;
    InstructionSplitter sp(&rst);
    auto parts = sp.split(r3(Opcode::ADD, 1, 2, 3), ThreadMask(0b1111));
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0].itid, ThreadMask(0b1111));
}

TEST(Splitter, SingletonNeverSplits)
{
    RegisterSharingTable rst;
    rst.clearThread(2, 0);
    InstructionSplitter sp(&rst);
    auto parts = sp.split(r3(Opcode::ADD, 1, 2, 3), ThreadMask::single(0));
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0].itid.count(), 1);
}

TEST(Splitter, UnsharedSourceSplitsFully)
{
    RegisterSharingTable rst;
    // Register 2 unshared between everyone.
    for (ThreadId t = 0; t < maxThreads; ++t)
        rst.clearThread(2, t);
    InstructionSplitter sp(&rst);
    auto parts = sp.split(r3(Opcode::ADD, 1, 2, 3), ThreadMask(0b1111));
    EXPECT_EQ(parts.size(), 4u);
    expectPartition(parts, ThreadMask(0b1111));
}

TEST(Splitter, PartitionFollowsEquivalenceClasses)
{
    RegisterSharingTable rst;
    // Register 2: {0,1} shared, {2,3} shared, nothing across.
    rst.updateDest(2, ThreadMask(0b1111), [](ThreadId a, ThreadId b) {
        return (a < 2) == (b < 2);
    });
    InstructionSplitter sp(&rst);
    auto parts = sp.split(r3(Opcode::ADD, 1, 2, 3), ThreadMask(0b1111));
    ASSERT_EQ(parts.size(), 2u);
    expectPartition(parts, ThreadMask(0b1111));
    EXPECT_EQ(parts[0].itid.count(), 2);
    EXPECT_EQ(parts[1].itid.count(), 2);
}

TEST(Splitter, IntersectsSharingAcrossBothSources)
{
    RegisterSharingTable rst;
    // rs1 groups {0,1} | {2,3}; rs2 groups {0,2} | {1,3}.
    rst.updateDest(2, ThreadMask(0b1111), [](ThreadId a, ThreadId b) {
        return (a < 2) == (b < 2);
    });
    rst.updateDest(3, ThreadMask(0b1111), [](ThreadId a, ThreadId b) {
        return (a % 2) == (b % 2);
    });
    InstructionSplitter sp(&rst);
    auto parts = sp.split(r3(Opcode::ADD, 1, 2, 3), ThreadMask(0b1111));
    // The intersection of the two partitions is all singletons.
    EXPECT_EQ(parts.size(), 4u);
    expectPartition(parts, ThreadMask(0b1111));
}

TEST(Splitter, FilterRestrictsToItid)
{
    RegisterSharingTable rst; // everything shared
    InstructionSplitter sp(&rst);
    // Fetched only for threads 1 and 2: output must cover exactly those.
    auto parts = sp.split(r3(Opcode::ADD, 1, 2, 3), ThreadMask(0b0110));
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0].itid, ThreadMask(0b0110));
}

TEST(Splitter, SourcelessInstructionsNeverSplit)
{
    RegisterSharingTable rst;
    for (ThreadId t = 0; t < maxThreads; ++t) {
        for (RegIndex r = 0; r < numArchRegs; ++r)
            rst.clearThread(r, t);
    }
    InstructionSplitter sp(&rst);
    Instruction li;
    li.op = Opcode::LUI;
    li.rd = 1;
    li.imm = 42;
    auto parts = sp.split(li, ThreadMask(0b1111));
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0].itid, ThreadMask(0b1111));
}

TEST(Splitter, OneSourceInstructionUsesOnlyThatSource)
{
    RegisterSharingTable rst;
    rst.clearThread(3, 0); // rs2-like register unshared -- irrelevant
    InstructionSplitter sp(&rst);
    Instruction mv;
    mv.op = Opcode::ADDI;
    mv.rd = 1;
    mv.rs1 = 2;
    mv.imm = 0;
    auto parts = sp.split(mv, ThreadMask(0b0011));
    EXPECT_EQ(parts.size(), 1u);
}

TEST(Splitter, ViaRegMergeFlagPropagates)
{
    RegisterSharingTable rst;
    rst.clearThread(2, 1);
    rst.mergeSet(2, 0, 1); // restored by register merging
    InstructionSplitter sp(&rst);
    auto parts = sp.split(r3(Opcode::ADD, 1, 2, 3), ThreadMask(0b0011));
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_TRUE(parts[0].viaRegMerge);

    // A plain shared register does not set the flag.
    RegisterSharingTable rst2;
    InstructionSplitter sp2(&rst2);
    auto parts2 = sp2.split(r3(Opcode::ADD, 1, 2, 3), ThreadMask(0b0011));
    EXPECT_FALSE(parts2[0].viaRegMerge);
}

/**
 * Property sweep: for every ITID and every equivalence relation on the
 * source register (encoded as a partition id), the splitter must produce
 * a partition of the ITID whose groups are exactly the sharing classes
 * restricted to the ITID (minimality for equivalence relations).
 */
class SplitterPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SplitterPropertyTest, MinimalPartitionForAllItids)
{
    // Parameter encodes a labeling of the 4 threads into classes 0..3
    // (4^4 = 256 labelings; the fixture sweeps a subset via stride).
    int code = GetParam();
    int label[maxThreads];
    for (int t = 0; t < maxThreads; ++t) {
        label[t] = code % 4;
        code /= 4;
    }
    RegisterSharingTable rst;
    rst.updateDest(2, ThreadMask(0b1111), [&](ThreadId a, ThreadId b) {
        return label[a] == label[b];
    });
    InstructionSplitter sp(&rst);
    Instruction inst;
    inst.op = Opcode::ADDI;
    inst.rd = 1;
    inst.rs1 = 2;

    for (std::uint8_t bits = 1; bits < 16; ++bits) {
        ThreadMask itid(bits);
        auto parts = sp.split(inst, itid);
        expectPartition(parts, itid);
        // Each group must be sharing-consistent...
        for (const SplitInstance &p : parts) {
            p.itid.forEach([&](ThreadId a) {
                p.itid.forEach([&](ThreadId b) {
                    EXPECT_EQ(label[a], label[b]);
                });
            });
        }
        // ...and minimal: #groups == #distinct labels present.
        bool present[4] = {false, false, false, false};
        itid.forEach([&](ThreadId t) { present[label[t]] = true; });
        int classes = present[0] + present[1] + present[2] + present[3];
        EXPECT_EQ(static_cast<int>(parts.size()), classes);
    }
}

INSTANTIATE_TEST_SUITE_P(AllLabelings, SplitterPropertyTest,
                         ::testing::Range(0, 256));
