/**
 * @file
 * Register-merging unit tests (paper §4.2.7): writer tracking, the
 * mapping-valid check, equal-value detection, read-port limiting, and
 * the DETECT/CATCHUP-only gating.
 */

#include <gtest/gtest.h>

#include "core/dyn_inst.hh"
#include "core/mmt/reg_merge.hh"

using namespace mmt;

namespace
{

std::vector<std::pair<RegVal, RegVal>>
spTid(int n)
{
    std::vector<std::pair<RegVal, RegVal>> v;
    for (int t = 0; t < n; ++t)
        v.emplace_back(0, static_cast<RegVal>(t));
    return v;
}

} // namespace

class RegMergeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::array<RegVal, numArchRegs> init{};
        rename.init(2, init, false, false, spTid(2));
        unit = std::make_unique<RegMergeUnit>(&rename, &rst, 2, 2);
        unit->beginCycle();
    }

    /** Build a committing singleton instance of @p tid writing @p reg. */
    DynInst
    committing(ThreadId tid, RegIndex reg, RegVal value, FetchMode mode)
    {
        DynInst di;
        di.itid = ThreadMask::single(tid);
        di.fetchItid = di.itid;
        di.fetchMode = mode;
        di.destArch = reg;
        di.destVal = value;
        di.dest = rename.prf().alloc(value, true);
        rename.setMapping(tid, reg, di.dest);
        return di;
    }

    RenameUnit rename;
    RegisterSharingTable rst;
    std::unique_ptr<RegMergeUnit> unit;
};

TEST_F(RegMergeTest, WriterCountTracking)
{
    EXPECT_TRUE(unit->noActiveWriter(0, 5));
    unit->onDispatchWrite(ThreadMask(0b0011), 5);
    EXPECT_FALSE(unit->noActiveWriter(0, 5));
    EXPECT_FALSE(unit->noActiveWriter(1, 5));
    unit->onCommitWrite(ThreadMask(0b0011), 5);
    EXPECT_TRUE(unit->noActiveWriter(0, 5));
}

TEST_F(RegMergeTest, MergesEqualValues)
{
    rst.clearThread(5, 0); // diverged earlier
    // Thread 1 architecturally holds 77 in reg 5.
    rename.setMapping(1, 5, rename.prf().alloc(77, true));
    DynInst di = committing(0, 5, 77, FetchMode::Detect);
    EXPECT_EQ(unit->tryMerge(di, ThreadMask(0b0011)), 1);
    EXPECT_TRUE(rst.shared(5, 0, 1));
    EXPECT_TRUE(rst.setByMerge(5, 0, 1));
}

TEST_F(RegMergeTest, RejectsUnequalValues)
{
    rst.clearThread(5, 0);
    rename.setMapping(1, 5, rename.prf().alloc(78, true));
    DynInst di = committing(0, 5, 77, FetchMode::Detect);
    EXPECT_EQ(unit->tryMerge(di, ThreadMask(0b0011)), 0);
    EXPECT_FALSE(rst.shared(5, 0, 1));
}

TEST_F(RegMergeTest, SkipsMergeModeInstructions)
{
    rst.clearThread(5, 0);
    rename.setMapping(1, 5, rename.prf().alloc(77, true));
    DynInst di = committing(0, 5, 77, FetchMode::Merge);
    EXPECT_EQ(unit->tryMerge(di, ThreadMask(0b0011)), 0);
}

TEST_F(RegMergeTest, SkipsWhenMappingInvalidated)
{
    rst.clearThread(5, 0);
    rename.setMapping(1, 5, rename.prf().alloc(77, true));
    DynInst di = committing(0, 5, 77, FetchMode::Detect);
    // A younger writer remapped thread 0's reg 5 before the commit.
    rename.setMapping(0, 5, rename.prf().alloc(99, false));
    EXPECT_EQ(unit->tryMerge(di, ThreadMask(0b0011)), 0);
}

TEST_F(RegMergeTest, SkipsWhenOtherThreadHasActiveWriter)
{
    rst.clearThread(5, 0);
    rename.setMapping(1, 5, rename.prf().alloc(77, true));
    unit->onDispatchWrite(ThreadMask::single(1), 5);
    DynInst di = committing(0, 5, 77, FetchMode::Detect);
    EXPECT_EQ(unit->tryMerge(di, ThreadMask(0b0011)), 0);
    EXPECT_EQ(unit->compares.value(), 0u);
}

TEST_F(RegMergeTest, SkipsHaltedThreads)
{
    rst.clearThread(5, 0);
    rename.setMapping(1, 5, rename.prf().alloc(77, true));
    DynInst di = committing(0, 5, 77, FetchMode::Detect);
    // Thread 1 not in the live mask.
    EXPECT_EQ(unit->tryMerge(di, ThreadMask::single(0)), 0);
}

TEST_F(RegMergeTest, ReadPortBudgetLimitsCompares)
{
    // 4-thread unit with a single read port.
    std::array<RegVal, numArchRegs> init{};
    RenameUnit rn4;
    rn4.init(4, init, false, false, spTid(4));
    RegisterSharingTable rst4;
    RegMergeUnit u4(&rn4, &rst4, /*read_ports=*/1, 4);
    u4.beginCycle();
    for (ThreadId t = 0; t < 4; ++t)
        rst4.clearThread(5, t);
    for (ThreadId t = 1; t < 4; ++t)
        rn4.setMapping(t, 5, rn4.prf().alloc(7, true));

    DynInst di;
    di.itid = ThreadMask::single(0);
    di.fetchItid = di.itid;
    di.fetchMode = FetchMode::Catchup;
    di.destArch = 5;
    di.destVal = 7;
    di.dest = rn4.prf().alloc(7, true);
    rn4.setMapping(0, 5, di.dest);

    // Only one comparison fits in the port budget this cycle.
    EXPECT_EQ(u4.tryMerge(di, ThreadMask(0b1111)), 1);
    EXPECT_EQ(u4.compares.value(), 1u);
    EXPECT_GE(u4.portStarved.value(), 1u);
    // Next cycle the budget is replenished.
    u4.beginCycle();
    EXPECT_EQ(u4.tryMerge(di, ThreadMask(0b1111)), 1);
}
