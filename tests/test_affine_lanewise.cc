/**
 * @file
 * Lane-wise soundness verification of the affine-with-base sharing
 * domain against the concrete ISA semantics (exec::evalAlu).
 *
 * The sharing pass promises, per static instruction:
 *
 *   MergeableProven — every register source holds the same value in
 *                     every thread, derived without heuristics;
 *   Divergent       — no two threads can ever present identical input
 *                     tuples (so the instruction is never merged);
 *   predictedLanes  — a lower bound on the number of distinct input
 *                     groups when Divergent (feeds split-steer).
 *
 * Each test runs the same straight-line program twice: abstractly
 * through analyzeProgram and concretely through a per-lane interpreter
 * built on exec::evalAlu seeded exactly like the analyzer's MT entry
 * state (tid = {0..3}, per-thread stack tops, all else zero). Any
 * static claim the dynamic lanes contradict is a domain bug.
 *
 * Deterministic cases cover three distinct synthetic base vectors
 * (tid stride 1, a scaled+offset tid stream, and sp's negative stride);
 * a 30-program fuzz sweeps random ALU dags under a fixed seed.
 */

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hh"
#include "iasm/assembler.hh"
#include "isa/exec.hh"

using namespace mmt;
using namespace mmt::analysis;

namespace
{

using LaneRegs = std::array<std::array<RegVal, (std::size_t)numArchRegs>,
                            (std::size_t)maxThreads>;

/** The analyzer's MT entry state, concretely (see entryState()). */
LaneRegs
entryLanes()
{
    LaneRegs lanes{};
    for (int t = 0; t < maxThreads; ++t) {
        lanes[(std::size_t)t][(std::size_t)regTid] =
            static_cast<RegVal>(t);
        lanes[(std::size_t)t][(std::size_t)regSp] =
            defaultStackTop -
            static_cast<Addr>(t) * defaultStackBytes;
    }
    return lanes;
}

/** Dest-writing pure ALU op the lane interpreter can execute. */
bool
executable(const Instruction &in)
{
    return in.info().writesDest && !in.isMem() && !in.isControl() &&
           !in.isSyscall() && in.op != Opcode::RECV;
}

/**
 * Verify every static claim of @p res against a concrete lane-wise
 * execution of the (straight-line) program. Returns the number of
 * instructions checked so callers can assert coverage.
 */
int
checkClaims(const Program &prog, const AnalysisResult &res)
{
    LaneRegs lanes = entryLanes();
    int checked = 0;
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        const Instruction &in = prog.code[i];
        if (!executable(in))
            break; // straight-line prefix ends at halt/out/...
        Addr pc = prog.codeBase + static_cast<Addr>(i) * instBytes;

        // Gather the concrete per-lane input tuple (rs1, rs2 values).
        std::array<std::pair<RegVal, RegVal>, (std::size_t)maxThreads>
            tup{};
        for (int t = 0; t < maxThreads; ++t) {
            RegVal a = in.info().readsSrc1
                           ? lanes[(std::size_t)t][(std::size_t)in.rs1]
                           : 0;
            RegVal b = in.info().readsSrc2
                           ? lanes[(std::size_t)t][(std::size_t)in.rs2]
                           : 0;
            tup[(std::size_t)t] = {a, b};
        }

        ShareClass c = res.classOf(pc);
        std::string ctx = "pc " + std::to_string(pc) + ": " +
                          in.toString();
        if (c == ShareClass::MergeableProven) {
            // Proven uniform inputs: every lane's tuple must match.
            for (int t = 1; t < maxThreads; ++t)
                EXPECT_EQ(tup[(std::size_t)t], tup[0]) << ctx;
        } else if (c == ShareClass::Divergent) {
            // Proven pairwise-distinct inputs: no two lanes may agree.
            for (int t = 0; t < maxThreads; ++t)
                for (int u = t + 1; u < maxThreads; ++u)
                    EXPECT_NE(tup[(std::size_t)t],
                              tup[(std::size_t)u])
                        << ctx;
            // predictedLanes is a proven lower bound on the distinct
            // input groups the splitter must form.
            std::set<std::pair<RegVal, RegVal>> groups(tup.begin(),
                                                       tup.end());
            EXPECT_GE(static_cast<int>(groups.size()),
                      static_cast<int>(
                          res.sharing.predictedLanes[i]))
                << ctx;
            EXPECT_GT(res.sharing.predictedLanes[i], 1) << ctx;
        }
        if (c != ShareClass::Divergent)
            EXPECT_EQ(res.sharing.predictedLanes[i], 1) << ctx;

        // Advance the concrete lanes through the ISA semantics.
        for (int t = 0; t < maxThreads; ++t) {
            lanes[(std::size_t)t][(std::size_t)in.rd] = exec::evalAlu(
                in, tup[(std::size_t)t].first,
                tup[(std::size_t)t].second, pc);
        }
        ++checked;
    }
    return checked;
}

int
verifySource(const std::string &src, int min_checked)
{
    Program prog = assemble(src);
    AnalysisResult res = analyzeProgram(prog);
    int checked = checkClaims(prog, res);
    EXPECT_GE(checked, min_checked) << src;
    return checked;
}

} // namespace

TEST(AffineLanewise, TidBaseVector)
{
    // Base vector 1: tid itself (stride 1, base 0). The domain must
    // prove divergence through linear ops and recover uniformity when
    // the stride cancels (r5 = r1 - r1 is 0 in every lane).
    verifySource(R"(
main:
    mv   r1, tid
    addi r2, r1, 16
    slli r3, r1, 3
    add  r4, r2, r3
    sub  r5, r1, r1
    addi r6, r5, 9
    halt
)",
                 6);
}

TEST(AffineLanewise, ScaledOffsetBaseVector)
{
    // Base vector 2: lanes {256, 264, 272, 280} (tid*8 + 256) — a
    // strided address stream with a nonzero uniform base, as produced
    // by array indexing. mul-by-uniform must keep the affine proof.
    verifySource(R"(
main:
    li   r1, 8
    mul  r2, tid, r1
    addi r3, r2, 256
    li   r4, 3
    mul  r5, r3, r4
    sub  r6, r5, r5
    halt
)",
                 6);
}

TEST(AffineLanewise, StackPointerBaseVector)
{
    // Base vector 3: sp's per-thread stack tops (negative stride
    // -defaultStackBytes). Frame arithmetic must stay provably
    // divergent; differencing two sp-derived values goes uniform.
    verifySource(R"(
main:
    mv   r1, sp
    addi r2, r1, -64
    mv   r3, sp
    sub  r4, r2, r3
    addi r5, r4, 64
    halt
)",
                 5);
}

TEST(AffineLanewise, FuzzStaticClaimsHoldDynamically)
{
    // 30 random straight-line ALU programs over tid/sp/constant seeds.
    // Every static claim (proven-uniform, proven-divergent, predicted
    // lane count) is checked against the concrete lanes. Fixed seed:
    // failures reproduce.
    std::mt19937 rng(0xA11CE5u);
    const char *rr_ops[] = {"add", "sub", "and", "or",
                            "xor", "mul", "slt", "sltu"};
    const char *ri_ops[] = {"addi", "andi", "ori",
                            "xori", "slli", "srli"};
    int total_checked = 0;
    for (int prog_i = 0; prog_i < 30; ++prog_i) {
        std::string src = "main:\n"
                          "    mv   r1, tid\n"
                          "    mv   r2, sp\n";
        src += "    li   r3, " +
               std::to_string(rng() % 97) + "\n";
        src += "    li   r4, " +
               std::to_string(rng() % 1021) + "\n";
        int written = 4;
        int n_ops = 8 + static_cast<int>(rng() % 7);
        for (int k = 0; k < n_ops; ++k) {
            int rd = 5 + static_cast<int>(
                             rng() % 6); // r5..r10, may overwrite
            rd = rd <= written + 1 ? rd : written + 1;
            std::string d = "r" + std::to_string(rd);
            std::string s1 =
                "r" + std::to_string(1 + rng() % (std::size_t)written);
            if (rng() % 2) {
                std::string s2 =
                    "r" +
                    std::to_string(1 + rng() % (std::size_t)written);
                src += "    " +
                       std::string(rr_ops[rng() % std::size(rr_ops)]) +
                       " " + d + ", " + s1 + ", " + s2 + "\n";
            } else {
                const char *op = ri_ops[rng() % std::size(ri_ops)];
                long imm = (op == std::string("slli") ||
                            op == std::string("srli"))
                               ? static_cast<long>(rng() % 9)
                               : static_cast<long>(rng() % 256) - 128;
                src += "    " + std::string(op) + " " + d + ", " + s1 +
                       ", " + std::to_string(imm) + "\n";
            }
            written = rd > written ? rd : written;
        }
        src += "    halt\n";
        total_checked += verifySource(src, n_ops + 4);
    }
    EXPECT_GE(total_checked, 30 * 12);
}
