/**
 * @file
 * Message-passing extension tests: MessageNetwork FIFO semantics, the
 * SEND/RECV instructions in interpreter and pipeline (including blocking
 * receives and conservative splitting), and the mp-ring workload across
 * configurations.
 */

#include <gtest/gtest.h>

#include "core/msg_net.hh"
#include "core/smt_core.hh"
#include "iasm/assembler.hh"
#include "profile/tracer.hh"
#include "sim/simulator.hh"

using namespace mmt;

TEST(MessageNetwork, FifoPerChannel)
{
    MessageNetwork net;
    EXPECT_FALSE(net.canRecv(0, 1));
    net.send(0, 1, 10);
    net.send(0, 1, 20);
    net.send(1, 0, 99);
    EXPECT_TRUE(net.canRecv(0, 1));
    EXPECT_EQ(net.recv(0, 1), 10u);
    EXPECT_EQ(net.recv(0, 1), 20u);
    EXPECT_FALSE(net.canRecv(0, 1));
    EXPECT_EQ(net.recv(1, 0), 99u);
    EXPECT_EQ(net.sends.value(), 3u);
    EXPECT_EQ(net.recvs.value(), 3u);
    EXPECT_EQ(net.pending(), 0u);
}

TEST(MessageNetwork, ChannelsAreIndependent)
{
    MessageNetwork net;
    net.send(2, 3, 1);
    EXPECT_FALSE(net.canRecv(3, 2)); // reverse direction empty
    EXPECT_FALSE(net.canRecv(2, 0));
    EXPECT_TRUE(net.canRecv(2, 3));
    EXPECT_EQ(net.pending(), 1u);
}

namespace
{

// Rank 0 sends a token to rank 1; rank 1 doubles and returns it.
const char *pingPong = R"(
.data
pid: .word 0
.text
main:
    la   r1, pid
    ld   r1, 0(r1)
    bnez r1, responder
    li   r2, 21
    li   r3, 1
    send r3, r2
    li   r4, 0
    recv r5, r3
    out  r5
    halt
responder:
    li   r3, 0
    recv r2, r3
    slli r2, r2, 1
    send r3, r2
    out  r2
    halt
)";

} // namespace

TEST(MessagePassing, FunctionalPingPong)
{
    Program prog = assemble(pingPong);
    MemoryImage a, b;
    a.loadData(prog);
    b.loadData(prog);
    a.write64(prog.symbol("pid"), 0);
    b.write64(prog.symbol("pid"), 1);
    MessageNetwork net;
    FunctionalCpu cpu(&prog, {&a, &b}, /*multi_execution=*/true);
    cpu.setMessageNetwork(&net);
    cpu.run();
    ASSERT_EQ(cpu.thread(0).output.size(), 1u);
    EXPECT_EQ(cpu.thread(0).output[0], 42u);
    EXPECT_EQ(cpu.thread(1).output[0], 42u);
    EXPECT_EQ(net.pending(), 0u);
}

TEST(MessagePassing, PipelinePingPong)
{
    Program prog = assemble(pingPong);
    MemoryImage a, b;
    a.loadData(prog);
    b.loadData(prog);
    a.write64(prog.symbol("pid"), 0);
    b.write64(prog.symbol("pid"), 1);

    CoreParams p;
    p.numThreads = 2;
    p.multiExecution = true;
    p.sharedFetch = true;
    p.sharedExec = true;
    p.regMerge = true;
    MessageNetwork net;
    SmtCore core(p, &prog, {&a, &b});
    core.setMessageNetwork(&net);
    core.run();
    EXPECT_EQ(core.thread(0).output[0], 42u);
    EXPECT_EQ(core.thread(1).output[0], 42u);
    EXPECT_EQ(net.pending(), 0u);
}

TEST(MessagePassing, RecvBlocksUntilMessageArrives)
{
    // Rank 1 busy-works before sending; rank 0's recv must wait for it.
    const char *src = R"(
.data
pid: .word 0
.text
main:
    la   r1, pid
    ld   r1, 0(r1)
    bnez r1, worker
    li   r3, 1
    recv r5, r3
    out  r5
    halt
worker:
    li   r4, 200
spin:
    addi r4, r4, -1
    bnez r4, spin
    li   r3, 0
    li   r2, 7
    send r3, r2
    halt
)";
    Program prog = assemble(src);
    MemoryImage a, b;
    a.loadData(prog);
    b.loadData(prog);
    a.write64(prog.symbol("pid"), 0);
    b.write64(prog.symbol("pid"), 1);
    CoreParams p;
    p.numThreads = 2;
    p.multiExecution = true;
    MessageNetwork net;
    SmtCore core(p, &prog, {&a, &b});
    core.setMessageNetwork(&net);
    core.run();
    EXPECT_EQ(core.thread(0).output[0], 7u);
    // The receiver must have waited for ~600 cycles of spin loop.
    EXPECT_GT(core.now(), 150u);
}

class MpRingTest
    : public ::testing::TestWithParam<std::pair<ConfigKind, int>>
{
};

TEST_P(MpRingTest, GoldenAcrossConfigs)
{
    auto [kind, threads] = GetParam();
    RunResult r = runWorkload(messagePassingWorkload(), kind, threads);
    EXPECT_TRUE(r.goldenOk);
    EXPECT_GT(r.committedThreadInsts, 5'000u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpRingTest,
    ::testing::Values(std::make_pair(ConfigKind::Base, 2),
                      std::make_pair(ConfigKind::MMT_F, 2),
                      std::make_pair(ConfigKind::MMT_FX, 2),
                      std::make_pair(ConfigKind::MMT_FXR, 2),
                      std::make_pair(ConfigKind::Limit, 2),
                      std::make_pair(ConfigKind::Base, 4),
                      std::make_pair(ConfigKind::MMT_FXR, 4),
                      std::make_pair(ConfigKind::MMT_FXR, 3)),
    [](const auto &info) {
        std::string s = std::string(configName(info.param.first)) + "_" +
                        std::to_string(info.param.second) + "t";
        for (char &c : s) {
            if (c == '-')
                c = '_';
        }
        return s;
    });

TEST(MessagePassing, AllRanksAgreeOnTheReduction)
{
    RunResult r = runWorkload(messagePassingWorkload(), ConfigKind::Base,
                              4, SimOverrides(), false);
    // Every rank's OUT is the same grand total (all-reduce semantics) —
    // verified against the interpreter in the golden sweep; here check
    // the instances agree with each other via a second run's outputs.
    Program prog = assemble(messagePassingWorkload().source);
    std::vector<std::unique_ptr<MemoryImage>> images;
    std::vector<MemoryImage *> ptrs;
    for (int i = 0; i < 4; ++i) {
        images.push_back(std::make_unique<MemoryImage>());
        images.back()->loadData(prog);
        messagePassingWorkload().initData(*images.back(), prog, i, 4,
                                          false);
        ptrs.push_back(images.back().get());
    }
    MessageNetwork net;
    FunctionalCpu cpu(&prog, ptrs, true);
    cpu.setMessageNetwork(&net);
    cpu.run();
    for (int t = 1; t < 4; ++t)
        EXPECT_EQ(cpu.thread(0).output, cpu.thread(t).output);
}

TEST(MessagePassing, SplitsRecvDestinations)
{
    // Merged fetch of RECV must split per thread: destinations hold
    // per-rank values.
    RunResult r = runWorkload(messagePassingWorkload(),
                              ConfigKind::MMT_FXR, 2);
    EXPECT_TRUE(r.goldenOk);
    // The run merges most of the stream but not everything: some
    // instructions (ranks, receives) must remain unmerged.
    EXPECT_GT(r.fetchModeFrac[0], 0.5);
    EXPECT_LT(r.identFrac[2] + r.identFrac[3], 1.0);
}
