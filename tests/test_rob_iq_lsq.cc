/**
 * @file
 * Backend structure tests: the shared-capacity ROB with per-thread
 * commit order and single-entry merged instances, the issue queue's
 * wakeup/select, the LSQ port accounting, and the FU pool.
 */

#include <gtest/gtest.h>

#include "core/func_units.hh"
#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/rename.hh"
#include "core/rob.hh"

using namespace mmt;

namespace
{

DynInst
inst(std::uint64_t seq, std::uint8_t itid_bits)
{
    DynInst d;
    d.seq = seq;
    d.itid = ThreadMask(itid_bits);
    d.fetchItid = d.itid;
    d.state = InstState::Completed;
    return d;
}

} // namespace

TEST(Rob, MergedInstanceOccupiesOneEntry)
{
    ReorderBuffer rob(4, 2);
    DynInst a = inst(1, 0b11);
    rob.insert(&a);
    EXPECT_EQ(rob.occupancy(), 1);
    EXPECT_EQ(rob.head(0), &a);
    EXPECT_EQ(rob.head(1), &a);
    EXPECT_TRUE(rob.committable(&a));
    rob.commit(&a);
    EXPECT_TRUE(rob.empty());
}

TEST(Rob, PerThreadOrderIndependent)
{
    ReorderBuffer rob(8, 2);
    DynInst a = inst(1, 0b01);
    DynInst b = inst(2, 0b10);
    DynInst c = inst(3, 0b01);
    rob.insert(&a);
    rob.insert(&b);
    rob.insert(&c);
    // Thread 1 can commit b even though thread 0's a is older globally.
    EXPECT_TRUE(rob.committable(&b));
    rob.commit(&b);
    EXPECT_TRUE(rob.committable(&a));
    EXPECT_FALSE(rob.committable(&c)); // behind a in thread 0's order
    rob.commit(&a);
    EXPECT_TRUE(rob.committable(&c));
}

TEST(Rob, MergedInstanceWaitsForAllMembers)
{
    ReorderBuffer rob(8, 2);
    DynInst a = inst(1, 0b01);       // thread 0 only
    DynInst m = inst(2, 0b11);       // merged
    rob.insert(&a);
    rob.insert(&m);
    // m is head of thread 1, but not of thread 0 (a is older there).
    EXPECT_FALSE(rob.committable(&m));
    rob.commit(&a);
    EXPECT_TRUE(rob.committable(&m));
}

TEST(Rob, CapacityAndThreadCounts)
{
    ReorderBuffer rob(2, 2);
    DynInst a = inst(1, 0b11);
    DynInst b = inst(2, 0b01);
    rob.insert(&a);
    rob.insert(&b);
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.threadCount(0), 2);
    EXPECT_EQ(rob.threadCount(1), 1);
}

TEST(IssueQueue, WakeupRequiresReadySources)
{
    PhysRegFile prf;
    PhysReg ready = prf.alloc(1, true);
    PhysReg pending = prf.alloc(2, false);
    IssueQueue iq(8, &prf);

    DynInst a = inst(1, 0b01);
    a.src1 = ready;
    a.src2 = pending;
    a.state = InstState::Dispatched;
    iq.insert(&a);

    auto none = iq.selectReady(8, [](DynInst *) { return true; });
    EXPECT_TRUE(none.empty());
    prf.setReady(pending);
    auto got = iq.selectReady(8, [](DynInst *) { return true; });
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], &a);
    EXPECT_EQ(iq.size(), 0);
}

TEST(IssueQueue, OldestFirstSelection)
{
    PhysRegFile prf;
    IssueQueue iq(8, &prf);
    DynInst a = inst(1, 0b01);
    DynInst b = inst(2, 0b10);
    DynInst c = inst(3, 0b01);
    iq.insert(&a);
    iq.insert(&b);
    iq.insert(&c);
    auto got = iq.selectReady(2, [](DynInst *) { return true; });
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], &a);
    EXPECT_EQ(got[1], &b);
    EXPECT_EQ(iq.size(), 1);
}

TEST(IssueQueue, RejectedInstancesStayQueued)
{
    PhysRegFile prf;
    IssueQueue iq(8, &prf);
    DynInst a = inst(1, 0b01);
    iq.insert(&a);
    auto got = iq.selectReady(8, [](DynInst *) { return false; });
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(iq.size(), 1);
}

TEST(Lsq, CapacityAndPorts)
{
    LoadStoreQueue lsq(2, 3);
    lsq.allocate();
    lsq.allocate();
    EXPECT_TRUE(lsq.full());
    lsq.release();
    EXPECT_FALSE(lsq.full());

    lsq.beginCycle();
    EXPECT_TRUE(lsq.portsAvailable(3));
    lsq.claimPorts(2);
    EXPECT_TRUE(lsq.portsAvailable(1));
    EXPECT_FALSE(lsq.portsAvailable(2));
    lsq.beginCycle();
    EXPECT_TRUE(lsq.portsAvailable(3));
    EXPECT_EQ(lsq.accesses.value(), 2u);
}

TEST(FuncUnits, PoolLimitsPerCycle)
{
    FuncUnitPool fu(2, 1);
    fu.beginCycle();
    EXPECT_TRUE(fu.available(OpClass::IntAlu));
    fu.claim(OpClass::IntAlu);
    fu.claim(OpClass::Branch); // branches use the ALU pool
    EXPECT_FALSE(fu.available(OpClass::IntMult));
    EXPECT_TRUE(fu.available(OpClass::FpAlu));
    fu.claim(OpClass::FpMult);
    EXPECT_FALSE(fu.available(OpClass::FpDiv));
    fu.beginCycle();
    EXPECT_TRUE(fu.available(OpClass::IntAlu));
    EXPECT_EQ(fu.intOps.value(), 2u);
    EXPECT_EQ(fu.fpOps.value(), 1u);
}

TEST(FuncUnits, LatencyOrdering)
{
    EXPECT_EQ(FuncUnitPool::latency(OpClass::IntAlu), 1u);
    EXPECT_LT(FuncUnitPool::latency(OpClass::FpAlu),
              FuncUnitPool::latency(OpClass::FpMult));
    EXPECT_LT(FuncUnitPool::latency(OpClass::FpMult),
              FuncUnitPool::latency(OpClass::FpDiv));
    EXPECT_TRUE(FuncUnitPool::isFpClass(OpClass::FpLong));
    EXPECT_FALSE(FuncUnitPool::isFpClass(OpClass::Branch));
}
