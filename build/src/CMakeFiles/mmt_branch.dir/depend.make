# Empty dependencies file for mmt_branch.
# This may be replaced when dependencies are built.
