file(REMOVE_RECURSE
  "CMakeFiles/mmt_branch.dir/branch/branch_predictor.cc.o"
  "CMakeFiles/mmt_branch.dir/branch/branch_predictor.cc.o.d"
  "libmmt_branch.a"
  "libmmt_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
