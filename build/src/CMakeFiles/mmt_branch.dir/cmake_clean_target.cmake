file(REMOVE_RECURSE
  "libmmt_branch.a"
)
