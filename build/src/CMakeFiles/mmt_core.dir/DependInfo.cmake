
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fetch.cc" "src/CMakeFiles/mmt_core.dir/core/fetch.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/fetch.cc.o.d"
  "/root/repo/src/core/func_units.cc" "src/CMakeFiles/mmt_core.dir/core/func_units.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/func_units.cc.o.d"
  "/root/repo/src/core/issue_queue.cc" "src/CMakeFiles/mmt_core.dir/core/issue_queue.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/issue_queue.cc.o.d"
  "/root/repo/src/core/lsq.cc" "src/CMakeFiles/mmt_core.dir/core/lsq.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/lsq.cc.o.d"
  "/root/repo/src/core/mmt/fetch_sync.cc" "src/CMakeFiles/mmt_core.dir/core/mmt/fetch_sync.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/mmt/fetch_sync.cc.o.d"
  "/root/repo/src/core/mmt/fhb.cc" "src/CMakeFiles/mmt_core.dir/core/mmt/fhb.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/mmt/fhb.cc.o.d"
  "/root/repo/src/core/mmt/lvip.cc" "src/CMakeFiles/mmt_core.dir/core/mmt/lvip.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/mmt/lvip.cc.o.d"
  "/root/repo/src/core/mmt/reg_merge.cc" "src/CMakeFiles/mmt_core.dir/core/mmt/reg_merge.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/mmt/reg_merge.cc.o.d"
  "/root/repo/src/core/mmt/rst.cc" "src/CMakeFiles/mmt_core.dir/core/mmt/rst.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/mmt/rst.cc.o.d"
  "/root/repo/src/core/mmt/splitter.cc" "src/CMakeFiles/mmt_core.dir/core/mmt/splitter.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/mmt/splitter.cc.o.d"
  "/root/repo/src/core/rename.cc" "src/CMakeFiles/mmt_core.dir/core/rename.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/rename.cc.o.d"
  "/root/repo/src/core/rob.cc" "src/CMakeFiles/mmt_core.dir/core/rob.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/rob.cc.o.d"
  "/root/repo/src/core/smt_core.cc" "src/CMakeFiles/mmt_core.dir/core/smt_core.cc.o" "gcc" "src/CMakeFiles/mmt_core.dir/core/smt_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
