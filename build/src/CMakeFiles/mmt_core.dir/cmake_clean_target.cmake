file(REMOVE_RECURSE
  "libmmt_core.a"
)
