# Empty compiler generated dependencies file for mmt_core.
# This may be replaced when dependencies are built.
