file(REMOVE_RECURSE
  "CMakeFiles/mmt_core.dir/core/fetch.cc.o"
  "CMakeFiles/mmt_core.dir/core/fetch.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/func_units.cc.o"
  "CMakeFiles/mmt_core.dir/core/func_units.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/issue_queue.cc.o"
  "CMakeFiles/mmt_core.dir/core/issue_queue.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/lsq.cc.o"
  "CMakeFiles/mmt_core.dir/core/lsq.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/mmt/fetch_sync.cc.o"
  "CMakeFiles/mmt_core.dir/core/mmt/fetch_sync.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/mmt/fhb.cc.o"
  "CMakeFiles/mmt_core.dir/core/mmt/fhb.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/mmt/lvip.cc.o"
  "CMakeFiles/mmt_core.dir/core/mmt/lvip.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/mmt/reg_merge.cc.o"
  "CMakeFiles/mmt_core.dir/core/mmt/reg_merge.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/mmt/rst.cc.o"
  "CMakeFiles/mmt_core.dir/core/mmt/rst.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/mmt/splitter.cc.o"
  "CMakeFiles/mmt_core.dir/core/mmt/splitter.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/rename.cc.o"
  "CMakeFiles/mmt_core.dir/core/rename.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/rob.cc.o"
  "CMakeFiles/mmt_core.dir/core/rob.cc.o.d"
  "CMakeFiles/mmt_core.dir/core/smt_core.cc.o"
  "CMakeFiles/mmt_core.dir/core/smt_core.cc.o.d"
  "libmmt_core.a"
  "libmmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
