file(REMOVE_RECURSE
  "libmmt_energy.a"
)
