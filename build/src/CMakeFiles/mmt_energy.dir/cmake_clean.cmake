file(REMOVE_RECURSE
  "CMakeFiles/mmt_energy.dir/energy/energy_model.cc.o"
  "CMakeFiles/mmt_energy.dir/energy/energy_model.cc.o.d"
  "libmmt_energy.a"
  "libmmt_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
