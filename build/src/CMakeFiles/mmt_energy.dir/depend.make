# Empty dependencies file for mmt_energy.
# This may be replaced when dependencies are built.
