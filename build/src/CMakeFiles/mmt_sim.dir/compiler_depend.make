# Empty compiler generated dependencies file for mmt_sim.
# This may be replaced when dependencies are built.
