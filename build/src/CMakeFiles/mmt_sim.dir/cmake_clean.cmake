file(REMOVE_RECURSE
  "CMakeFiles/mmt_sim.dir/sim/configs.cc.o"
  "CMakeFiles/mmt_sim.dir/sim/configs.cc.o.d"
  "CMakeFiles/mmt_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/mmt_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/mmt_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/mmt_sim.dir/sim/simulator.cc.o.d"
  "libmmt_sim.a"
  "libmmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
