file(REMOVE_RECURSE
  "libmmt_sim.a"
)
