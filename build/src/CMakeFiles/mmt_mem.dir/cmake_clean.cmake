file(REMOVE_RECURSE
  "CMakeFiles/mmt_mem.dir/mem/cache.cc.o"
  "CMakeFiles/mmt_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/mmt_mem.dir/mem/memory_image.cc.o"
  "CMakeFiles/mmt_mem.dir/mem/memory_image.cc.o.d"
  "CMakeFiles/mmt_mem.dir/mem/memory_system.cc.o"
  "CMakeFiles/mmt_mem.dir/mem/memory_system.cc.o.d"
  "CMakeFiles/mmt_mem.dir/mem/trace_cache.cc.o"
  "CMakeFiles/mmt_mem.dir/mem/trace_cache.cc.o.d"
  "libmmt_mem.a"
  "libmmt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
