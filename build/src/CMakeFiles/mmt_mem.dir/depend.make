# Empty dependencies file for mmt_mem.
# This may be replaced when dependencies are built.
