file(REMOVE_RECURSE
  "libmmt_mem.a"
)
