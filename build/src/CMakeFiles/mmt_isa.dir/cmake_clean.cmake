file(REMOVE_RECURSE
  "CMakeFiles/mmt_isa.dir/isa/exec.cc.o"
  "CMakeFiles/mmt_isa.dir/isa/exec.cc.o.d"
  "CMakeFiles/mmt_isa.dir/isa/instruction.cc.o"
  "CMakeFiles/mmt_isa.dir/isa/instruction.cc.o.d"
  "libmmt_isa.a"
  "libmmt_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
