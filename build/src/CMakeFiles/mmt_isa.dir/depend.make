# Empty dependencies file for mmt_isa.
# This may be replaced when dependencies are built.
