file(REMOVE_RECURSE
  "libmmt_isa.a"
)
