file(REMOVE_RECURSE
  "libmmt_common.a"
)
