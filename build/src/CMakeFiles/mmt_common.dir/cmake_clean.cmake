file(REMOVE_RECURSE
  "CMakeFiles/mmt_common.dir/common/logging.cc.o"
  "CMakeFiles/mmt_common.dir/common/logging.cc.o.d"
  "CMakeFiles/mmt_common.dir/common/stats.cc.o"
  "CMakeFiles/mmt_common.dir/common/stats.cc.o.d"
  "CMakeFiles/mmt_common.dir/common/thread_mask.cc.o"
  "CMakeFiles/mmt_common.dir/common/thread_mask.cc.o.d"
  "libmmt_common.a"
  "libmmt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
