# Empty compiler generated dependencies file for mmt_common.
# This may be replaced when dependencies are built.
