
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iasm/assembler.cc" "src/CMakeFiles/mmt_iasm.dir/iasm/assembler.cc.o" "gcc" "src/CMakeFiles/mmt_iasm.dir/iasm/assembler.cc.o.d"
  "/root/repo/src/iasm/program.cc" "src/CMakeFiles/mmt_iasm.dir/iasm/program.cc.o" "gcc" "src/CMakeFiles/mmt_iasm.dir/iasm/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
