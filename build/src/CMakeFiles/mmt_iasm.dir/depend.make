# Empty dependencies file for mmt_iasm.
# This may be replaced when dependencies are built.
