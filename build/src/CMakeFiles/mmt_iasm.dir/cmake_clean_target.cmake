file(REMOVE_RECURSE
  "libmmt_iasm.a"
)
