file(REMOVE_RECURSE
  "CMakeFiles/mmt_iasm.dir/iasm/assembler.cc.o"
  "CMakeFiles/mmt_iasm.dir/iasm/assembler.cc.o.d"
  "CMakeFiles/mmt_iasm.dir/iasm/program.cc.o"
  "CMakeFiles/mmt_iasm.dir/iasm/program.cc.o.d"
  "libmmt_iasm.a"
  "libmmt_iasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_iasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
