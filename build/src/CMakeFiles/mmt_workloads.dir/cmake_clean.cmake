file(REMOVE_RECURSE
  "CMakeFiles/mmt_workloads.dir/workloads/libsvm.cc.o"
  "CMakeFiles/mmt_workloads.dir/workloads/libsvm.cc.o.d"
  "CMakeFiles/mmt_workloads.dir/workloads/message_passing.cc.o"
  "CMakeFiles/mmt_workloads.dir/workloads/message_passing.cc.o.d"
  "CMakeFiles/mmt_workloads.dir/workloads/parsec.cc.o"
  "CMakeFiles/mmt_workloads.dir/workloads/parsec.cc.o.d"
  "CMakeFiles/mmt_workloads.dir/workloads/registry.cc.o"
  "CMakeFiles/mmt_workloads.dir/workloads/registry.cc.o.d"
  "CMakeFiles/mmt_workloads.dir/workloads/spec_me.cc.o"
  "CMakeFiles/mmt_workloads.dir/workloads/spec_me.cc.o.d"
  "CMakeFiles/mmt_workloads.dir/workloads/splash2.cc.o"
  "CMakeFiles/mmt_workloads.dir/workloads/splash2.cc.o.d"
  "libmmt_workloads.a"
  "libmmt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
