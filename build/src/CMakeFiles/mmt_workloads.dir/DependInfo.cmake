
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/libsvm.cc" "src/CMakeFiles/mmt_workloads.dir/workloads/libsvm.cc.o" "gcc" "src/CMakeFiles/mmt_workloads.dir/workloads/libsvm.cc.o.d"
  "/root/repo/src/workloads/message_passing.cc" "src/CMakeFiles/mmt_workloads.dir/workloads/message_passing.cc.o" "gcc" "src/CMakeFiles/mmt_workloads.dir/workloads/message_passing.cc.o.d"
  "/root/repo/src/workloads/parsec.cc" "src/CMakeFiles/mmt_workloads.dir/workloads/parsec.cc.o" "gcc" "src/CMakeFiles/mmt_workloads.dir/workloads/parsec.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/mmt_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/mmt_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/spec_me.cc" "src/CMakeFiles/mmt_workloads.dir/workloads/spec_me.cc.o" "gcc" "src/CMakeFiles/mmt_workloads.dir/workloads/spec_me.cc.o.d"
  "/root/repo/src/workloads/splash2.cc" "src/CMakeFiles/mmt_workloads.dir/workloads/splash2.cc.o" "gcc" "src/CMakeFiles/mmt_workloads.dir/workloads/splash2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmt_iasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
