# Empty dependencies file for mmt_workloads.
# This may be replaced when dependencies are built.
