file(REMOVE_RECURSE
  "libmmt_workloads.a"
)
