file(REMOVE_RECURSE
  "libmmt_profile.a"
)
