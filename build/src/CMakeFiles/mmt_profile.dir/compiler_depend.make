# Empty compiler generated dependencies file for mmt_profile.
# This may be replaced when dependencies are built.
