file(REMOVE_RECURSE
  "CMakeFiles/mmt_profile.dir/profile/align.cc.o"
  "CMakeFiles/mmt_profile.dir/profile/align.cc.o.d"
  "CMakeFiles/mmt_profile.dir/profile/random_program.cc.o"
  "CMakeFiles/mmt_profile.dir/profile/random_program.cc.o.d"
  "CMakeFiles/mmt_profile.dir/profile/tracer.cc.o"
  "CMakeFiles/mmt_profile.dir/profile/tracer.cc.o.d"
  "libmmt_profile.a"
  "libmmt_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
