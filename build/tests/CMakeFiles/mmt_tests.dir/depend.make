# Empty dependencies file for mmt_tests.
# This may be replaced when dependencies are built.
