
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_align.cc" "tests/CMakeFiles/mmt_tests.dir/test_align.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_align.cc.o.d"
  "/root/repo/tests/test_assembler.cc" "tests/CMakeFiles/mmt_tests.dir/test_assembler.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_assembler.cc.o.d"
  "/root/repo/tests/test_branch.cc" "tests/CMakeFiles/mmt_tests.dir/test_branch.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_branch.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/mmt_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_configs.cc" "tests/CMakeFiles/mmt_tests.dir/test_configs.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_configs.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/mmt_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_fetch_stage.cc" "tests/CMakeFiles/mmt_tests.dir/test_fetch_stage.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_fetch_stage.cc.o.d"
  "/root/repo/tests/test_fetch_sync.cc" "tests/CMakeFiles/mmt_tests.dir/test_fetch_sync.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_fetch_sync.cc.o.d"
  "/root/repo/tests/test_fhb.cc" "tests/CMakeFiles/mmt_tests.dir/test_fhb.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_fhb.cc.o.d"
  "/root/repo/tests/test_functional_cpu.cc" "tests/CMakeFiles/mmt_tests.dir/test_functional_cpu.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_functional_cpu.cc.o.d"
  "/root/repo/tests/test_golden_model.cc" "tests/CMakeFiles/mmt_tests.dir/test_golden_model.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_golden_model.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/mmt_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_lvip.cc" "tests/CMakeFiles/mmt_tests.dir/test_lvip.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_lvip.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/mmt_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_merge_hint.cc" "tests/CMakeFiles/mmt_tests.dir/test_merge_hint.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_merge_hint.cc.o.d"
  "/root/repo/tests/test_message_passing.cc" "tests/CMakeFiles/mmt_tests.dir/test_message_passing.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_message_passing.cc.o.d"
  "/root/repo/tests/test_mmt_pipeline.cc" "tests/CMakeFiles/mmt_tests.dir/test_mmt_pipeline.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_mmt_pipeline.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/mmt_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_random_programs.cc" "tests/CMakeFiles/mmt_tests.dir/test_random_programs.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_random_programs.cc.o.d"
  "/root/repo/tests/test_reg_merge.cc" "tests/CMakeFiles/mmt_tests.dir/test_reg_merge.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_reg_merge.cc.o.d"
  "/root/repo/tests/test_rename.cc" "tests/CMakeFiles/mmt_tests.dir/test_rename.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_rename.cc.o.d"
  "/root/repo/tests/test_rob_iq_lsq.cc" "tests/CMakeFiles/mmt_tests.dir/test_rob_iq_lsq.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_rob_iq_lsq.cc.o.d"
  "/root/repo/tests/test_rst.cc" "tests/CMakeFiles/mmt_tests.dir/test_rst.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_rst.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/mmt_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_splitter.cc" "tests/CMakeFiles/mmt_tests.dir/test_splitter.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_splitter.cc.o.d"
  "/root/repo/tests/test_stats_dump.cc" "tests/CMakeFiles/mmt_tests.dir/test_stats_dump.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_stats_dump.cc.o.d"
  "/root/repo/tests/test_workload_profiles.cc" "tests/CMakeFiles/mmt_tests.dir/test_workload_profiles.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_workload_profiles.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/mmt_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/mmt_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_iasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
