file(REMOVE_RECURSE
  "CMakeFiles/fetch_sync_visualizer.dir/fetch_sync_visualizer.cc.o"
  "CMakeFiles/fetch_sync_visualizer.dir/fetch_sync_visualizer.cc.o.d"
  "fetch_sync_visualizer"
  "fetch_sync_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetch_sync_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
