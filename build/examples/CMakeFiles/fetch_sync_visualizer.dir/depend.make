# Empty dependencies file for fetch_sync_visualizer.
# This may be replaced when dependencies are built.
