file(REMOVE_RECURSE
  "CMakeFiles/multi_execution_study.dir/multi_execution_study.cc.o"
  "CMakeFiles/multi_execution_study.dir/multi_execution_study.cc.o.d"
  "multi_execution_study"
  "multi_execution_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_execution_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
