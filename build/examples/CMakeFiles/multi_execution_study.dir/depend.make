# Empty dependencies file for multi_execution_study.
# This may be replaced when dependencies are built.
