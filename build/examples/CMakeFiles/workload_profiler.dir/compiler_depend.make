# Empty compiler generated dependencies file for workload_profiler.
# This may be replaced when dependencies are built.
