file(REMOVE_RECURSE
  "CMakeFiles/mmt_cli.dir/mmt_cli.cc.o"
  "CMakeFiles/mmt_cli.dir/mmt_cli.cc.o.d"
  "mmt_cli"
  "mmt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
