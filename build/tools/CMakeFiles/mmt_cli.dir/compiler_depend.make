# Empty compiler generated dependencies file for mmt_cli.
# This may be replaced when dependencies are built.
