# Empty compiler generated dependencies file for bench_fig5d_fetch_modes.
# This may be replaced when dependencies are built.
