file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_speedup_2t.dir/bench_fig5a_speedup_2t.cc.o"
  "CMakeFiles/bench_fig5a_speedup_2t.dir/bench_fig5a_speedup_2t.cc.o.d"
  "bench_fig5a_speedup_2t"
  "bench_fig5a_speedup_2t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_speedup_2t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
