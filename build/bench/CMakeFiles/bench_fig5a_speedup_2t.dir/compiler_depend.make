# Empty compiler generated dependencies file for bench_fig5a_speedup_2t.
# This may be replaced when dependencies are built.
