
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_sharing_profile.cc" "bench/CMakeFiles/bench_fig1_sharing_profile.dir/bench_fig1_sharing_profile.cc.o" "gcc" "bench/CMakeFiles/bench_fig1_sharing_profile.dir/bench_fig1_sharing_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_iasm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
