file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_speedup_4t.dir/bench_fig5c_speedup_4t.cc.o"
  "CMakeFiles/bench_fig5c_speedup_4t.dir/bench_fig5c_speedup_4t.cc.o.d"
  "bench_fig5c_speedup_4t"
  "bench_fig5c_speedup_4t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_speedup_4t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
