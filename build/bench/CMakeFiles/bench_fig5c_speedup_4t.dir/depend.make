# Empty dependencies file for bench_fig5c_speedup_4t.
# This may be replaced when dependencies are built.
