file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tracecache.dir/bench_ablation_tracecache.cc.o"
  "CMakeFiles/bench_ablation_tracecache.dir/bench_ablation_tracecache.cc.o.d"
  "bench_ablation_tracecache"
  "bench_ablation_tracecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tracecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
