# Empty compiler generated dependencies file for bench_ablation_tracecache.
# This may be replaced when dependencies are built.
