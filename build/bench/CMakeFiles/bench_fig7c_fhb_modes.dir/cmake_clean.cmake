file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7c_fhb_modes.dir/bench_fig7c_fhb_modes.cc.o"
  "CMakeFiles/bench_fig7c_fhb_modes.dir/bench_fig7c_fhb_modes.cc.o.d"
  "bench_fig7c_fhb_modes"
  "bench_fig7c_fhb_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_fhb_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
