# Empty dependencies file for bench_fig7c_fhb_modes.
# This may be replaced when dependencies are built.
