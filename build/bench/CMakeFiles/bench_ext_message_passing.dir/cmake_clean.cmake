file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_message_passing.dir/bench_ext_message_passing.cc.o"
  "CMakeFiles/bench_ext_message_passing.dir/bench_ext_message_passing.cc.o.d"
  "bench_ext_message_passing"
  "bench_ext_message_passing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_message_passing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
