# Empty dependencies file for bench_fig7a_fhb_perf.
# This may be replaced when dependencies are built.
