file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_hardware.dir/bench_table3_hardware.cc.o"
  "CMakeFiles/bench_table3_hardware.dir/bench_table3_hardware.cc.o.d"
  "bench_table3_hardware"
  "bench_table3_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
