# Empty dependencies file for bench_fig7d_fetch_width.
# This may be replaced when dependencies are built.
