file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_lsports.dir/bench_fig7b_lsports.cc.o"
  "CMakeFiles/bench_fig7b_lsports.dir/bench_fig7b_lsports.cc.o.d"
  "bench_fig7b_lsports"
  "bench_fig7b_lsports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_lsports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
