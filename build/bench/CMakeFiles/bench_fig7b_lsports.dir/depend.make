# Empty dependencies file for bench_fig7b_lsports.
# This may be replaced when dependencies are built.
