file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_identified.dir/bench_fig5b_identified.cc.o"
  "CMakeFiles/bench_fig5b_identified.dir/bench_fig5b_identified.cc.o.d"
  "bench_fig5b_identified"
  "bench_fig5b_identified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_identified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
