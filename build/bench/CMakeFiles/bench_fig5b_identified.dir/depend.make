# Empty dependencies file for bench_fig5b_identified.
# This may be replaced when dependencies are built.
